package nfa

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"pqe/internal/bitset"
	"pqe/internal/dense"
	"pqe/internal/efloat"
	"pqe/internal/obs"
	"pqe/internal/splitmix"
)

// CountOptions configures the CountNFA approximation scheme.
type CountOptions struct {
	// Epsilon is the target relative error of a single trial. Must be in
	// (0, 1). Default 0.1.
	Epsilon float64
	// Trials is the number of independent estimates whose median is
	// returned (the standard confidence-boosting step of an FPRAS).
	// Default 5.
	Trials int
	// Samples is the number of samples drawn per overlap term when
	// estimating the size of a union of non-deterministic branches.
	// 0 derives a default of max(24, ⌈6/ε²⌉).
	//
	// The rigorous bound of Arenas et al. is polynomial but with large
	// constants the paper itself deems impractical (§6); this knob is
	// the practical stand-in, validated against exact counts in the
	// test suite.
	Samples int
	// MaxRetry bounds rejection-sampling retries per draw. 0 derives
	// a default proportional to the branch fan-out.
	MaxRetry int
	// Seed seeds the deterministic PRNG. Ignored if Rng is set.
	Seed int64
	// Rng, when non-nil, supplies randomness.
	Rng *rand.Rand
	// Parallel runs the independent trials on separate goroutines; the
	// result is identical to the sequential run with the same seed.
	Parallel bool
	// Workers bounds the goroutines drawing overlap samples *inside* a
	// trial. 0 or 1 means sequential. Every sample draws from its own
	// sub-RNG derived from (trial seed, site, sample index), so the
	// result is identical across all Workers settings for a fixed seed.
	Workers int
	// Stats, when non-nil, accumulates estimator effort counters across
	// all trials. Deprecated thin accessor: the same counters (and more)
	// flow into Obs's registry under countnfa_* names; new call sites
	// should read those.
	Stats *Stats
	// Obs, when non-nil, receives the unified telemetry of every call:
	// a count.nfa span with per-trial child spans, countnfa_* registry
	// counters (memo hits/misses, interner sizes, acceptance checks,
	// worker utilization), and per-trial convergence records. A nil
	// Scope disables all of it at the cost of a pointer test.
	Obs *obs.Scope
}

// Stats reports how much work the estimator did.
type Stats struct {
	// WordKeys and UnionKeys are memo-table sizes: distinct
	// (state, length) and (target set, length) cells computed.
	WordKeys, UnionKeys int
	// UnionSamples is the number of words drawn for overlap estimation.
	UnionSamples int
	// Rejections counts canonical-rejection retries during sampling.
	Rejections int
	// WallTime is the elapsed time of the Count calls that recorded into
	// this Stats.
	WallTime time.Duration
	// Mallocs and AllocBytes are heap-allocation deltas over those
	// calls, read from runtime.MemStats. They are process-global, so
	// concurrent unrelated work inflates them; within the benchmark
	// harness they attribute cleanly.
	Mallocs    uint64
	AllocBytes uint64
}

func (o CountOptions) withDefaults() CountOptions {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.1
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Samples <= 0 {
		o.Samples = int(math.Max(24, math.Ceil(6/(o.Epsilon*o.Epsilon))))
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Rng == nil {
		seed := o.Seed
		if seed == 0 {
			seed = 1
		}
		o.Rng = rand.New(rand.NewSource(seed))
	}
	return o
}

// Count approximates |L_n(M)|, the number of distinct words of length n
// accepted by M, within relative error ε with high probability. It
// realizes the paper's CountNFA black box [5].
func Count(m *NFA, n int, opts CountOptions) efloat.E {
	opts = opts.withDefaults()
	var t0 time.Time
	var m0 runtime.MemStats
	if opts.Stats != nil {
		t0 = time.Now()
		runtime.ReadMemStats(&m0)
	}
	ix := m.index()
	sc, span := opts.Obs.Span("count.nfa")
	if span != nil {
		span.SetAttr("n", n)
		span.SetAttr("states", m.numStates)
		span.SetAttr("trials", opts.Trials)
		span.SetAttr("epsilon", opts.Epsilon)
		span.SetAttr("workers", opts.Workers)
	}
	conv := sc.Convergence()
	callID := conv.NextCall()
	callStart := time.Time{}
	if conv != nil || span != nil {
		callStart = time.Now()
	}
	results := make([]efloat.E, opts.Trials)
	seeds := make([]int64, opts.Trials)
	for t := range seeds {
		seeds[t] = opts.Rng.Int63()
	}
	ests := make([]*wordEstimator, opts.Trials)
	runTrial := func(t int) {
		tspan := span.Start("trial")
		var tt0 time.Time
		if conv != nil || tspan != nil {
			tt0 = time.Now()
		}
		e := newWordEstimatorSeeded(m, ix, opts, seeds[t])
		results[t] = e.topLevel(n)
		ests[t] = e
		if tspan != nil {
			tspan.SetAttr("trial", t)
			tspan.SetAttr("union_samples", e.unionSamples)
			tspan.End()
		}
		if conv != nil {
			log2 := math.Inf(-1)
			if !results[t].IsZero() {
				log2 = results[t].Log2()
			}
			conv.Record(obs.TrialRecord{
				Engine:       "countnfa",
				Call:         callID,
				Trial:        t,
				Trials:       opts.Trials,
				Epsilon:      opts.Epsilon,
				Log2Estimate: log2,
				UnionSamples: e.unionSamples,
				Elapsed:      time.Since(tt0),
			})
		}
	}
	if opts.Parallel {
		var wg sync.WaitGroup
		for t := range results {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				pprof.Do(context.Background(), pprof.Labels("pqe_engine", "countnfa", "pqe_stage", "trial"), func(context.Context) {
					runTrial(t)
				})
			}(t)
		}
		wg.Wait()
	} else {
		for t := range results {
			runTrial(t)
		}
	}
	if opts.Stats != nil {
		for _, e := range ests {
			opts.Stats.record(e)
		}
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		opts.Stats.WallTime += time.Since(t0)
		opts.Stats.Mallocs += m1.Mallocs - m0.Mallocs
		opts.Stats.AllocBytes += m1.TotalAlloc - m0.TotalAlloc
	}
	if reg := sc.Registry(); reg != nil {
		flushRegistry(reg, ix, ests, time.Since(callStart))
	}
	span.End()
	sort.Slice(results, func(i, j int) bool { return results[i].Less(results[j]) })
	return results[len(results)/2]
}

// flushRegistry folds the per-trial effort counters into the unified
// metrics registry, once per Count call — never inside the sampling
// loops, which only bump plain per-trial integers.
func flushRegistry(reg *obs.Registry, ix *denseIndex, ests []*wordEstimator, wall time.Duration) {
	var wordKeys, unionKeys, memoHits, unionSamples, rejections, acceptChecks int
	var spawns, busy int64
	for _, e := range ests {
		if e == nil {
			continue
		}
		wordKeys += e.words.Keys()
		unionKeys += e.unions.Keys()
		memoHits += e.memoHits
		unionSamples += e.unionSamples
		rejections += e.rejections
		acceptChecks += e.acceptChecks()
		spawns += e.workerSpawns
		busy += e.workerBusyNs
	}
	reg.Counter("countnfa_calls_total").Inc()
	reg.Counter("countnfa_trials_total").Add(int64(len(ests)))
	reg.Counter("countnfa_word_keys_total").Add(int64(wordKeys))
	reg.Counter("countnfa_union_keys_total").Add(int64(unionKeys))
	reg.Counter("countnfa_memo_hits_total").Add(int64(memoHits))
	reg.Counter("countnfa_memo_misses_total").Add(int64(wordKeys + unionKeys))
	reg.Counter("countnfa_union_samples_total").Add(int64(unionSamples))
	reg.Counter("countnfa_rejections_total").Add(int64(rejections))
	reg.Counter("countnfa_accept_checks_total").Add(int64(acceptChecks))
	reg.Counter("countnfa_worker_spawns_total").Add(spawns)
	reg.Counter("countnfa_worker_busy_ns_total").Add(busy)
	reg.Counter("countnfa_wall_ns_total").Add(wall.Nanoseconds())
	reg.Gauge("countnfa_interned_sets").Set(float64(len(ix.sets)))
	reg.Histogram("countnfa_call_seconds").Observe(wall.Seconds())
}

func (s *Stats) record(e *wordEstimator) {
	s.WordKeys += e.words.Keys()
	s.UnionKeys += e.unions.Keys()
	s.UnionSamples += e.unionSamples
	s.Rejections += e.rejections
}

// wordEstimator holds one trial's memo tables over the automaton's
// frozen dense index. Estimation (estimate / unionEst) runs sequentially
// and writes the tables; sampling runs on sampler sessions that only
// read them (see sampler.go).
type wordEstimator struct {
	m        *NFA
	ix       *denseIndex
	finals   bitset.Set
	seed     int64
	samples  int
	maxRetry int
	workers  int

	words  dense.Table // rows: states; |L(q, l)| estimates
	unions dense.Table // rows: interned target sets; |∪ L(q', l)|

	unionSamples int
	rejections   int
	memoHits     int // estimation-path memo-table hits (misses = keys)
	acceptCount  int // subset-simulation membership tests (flushed from samplers)

	// Worker utilization, measured only when timed (obs attached):
	// goroutines spawned by countFreshParallel and their summed busy ns.
	timed        bool
	workerSpawns int64
	workerBusyNs int64

	top        *sampler   // lazily created top-level sampling session
	workerSmps []*sampler // reused intra-trial worker samplers
}

// acceptChecks totals the subset-simulation membership tests across the
// trial's samplers (worker counts are flushed eagerly; the top-level
// sampling session is read here).
func (e *wordEstimator) acceptChecks() int {
	n := e.acceptCount
	if e.top != nil {
		n += e.top.acceptChecks
	}
	return n
}

func newWordEstimator(m *NFA, opts CountOptions) *wordEstimator {
	return newWordEstimatorSeeded(m, m.index(), opts, opts.Rng.Int63())
}

func newWordEstimatorSeeded(m *NFA, ix *denseIndex, opts CountOptions, seed int64) *wordEstimator {
	return &wordEstimator{
		m:        m,
		ix:       ix,
		finals:   m.final,
		seed:     seed,
		samples:  opts.Samples,
		maxRetry: opts.MaxRetry,
		workers:  opts.Workers,
		timed:    opts.Obs.Registry() != nil,
		words:    dense.NewTable(m.numStates),
		unions:   dense.NewTable(len(ix.sets)),
	}
}

// topLevel estimates |∪_{q∈I} L(q, n)|.
func (e *wordEstimator) topLevel(n int) efloat.E {
	if e.ix.topSet >= 0 {
		return e.unionEst(e.ix.topSet, n)
	}
	if len(e.m.initial) == 1 {
		return e.estimate(e.m.initial[0], n)
	}
	return efloat.Zero
}

// estimate returns the (memoized) estimate of |L(q, l)|.
func (e *wordEstimator) estimate(q, l int) efloat.E {
	if l == 0 {
		if e.finals.Has(q) {
			return efloat.One
		}
		return efloat.Zero
	}
	if v, ok := e.words.Get(q, l); ok {
		e.memoHits++
		return v
	}
	// Words starting with different symbols are distinct, so the
	// per-symbol unions combine by exact summation.
	e.words.Put(q, l, efloat.Zero)
	total := efloat.Zero
	for i := range e.ix.states[q] {
		en := &e.ix.states[q][i]
		if en.set < 0 {
			total = total.Add(e.estimate(en.targets[0], l-1))
		} else {
			total = total.Add(e.unionEst(en.set, l-1))
		}
	}
	e.words.Put(q, l, total)
	return total
}

// wordLookup is the read-only view of estimate for samplers.
func (e *wordEstimator) wordLookup(q, l int) efloat.E {
	if l == 0 {
		if e.finals.Has(q) {
			return efloat.One
		}
		return efloat.Zero
	}
	v, _ := e.words.Get(q, l)
	return v
}

// unionEst estimates (and memoizes) |∪_{q'∈set} L(q', l)| via the
// sequential difference decomposition
// |∪ A_j| = Σ_j |A_j|·Pr_{x∼A_j}[x ∉ A_1 ∪ … ∪ A_{j−1}], with each
// probability estimated by sampling from A_j and testing membership in
// the earlier branches (NFA acceptance is polynomial). Interning means
// every (state, symbol) pair with the same target set shares this cell.
func (e *wordEstimator) unionEst(set, l int) efloat.E {
	if v, ok := e.unions.Get(set, l); ok {
		e.memoHits++
		return v
	}
	e.unions.Put(set, l, efloat.Zero)
	targets := e.ix.sets[set]
	total := efloat.Zero
	for j, t := range targets {
		cj := e.estimate(t, l)
		if cj.IsZero() {
			continue
		}
		if j == 0 {
			total = total.Add(cj)
			continue
		}
		fresh := e.countFreshParallel(targets, j, l, cellSite(set, l, j))
		total = total.Add(cj.MulFloat(float64(fresh) / float64(e.samples)))
	}
	e.unions.Put(set, l, total)
	return total
}

// cellSite names the sampling site of union branch j at cell (set, l)
// for sub-RNG derivation. Unlike a per-call sequence counter, the site
// depends only on the cell identity, so the estimate of every memo cell
// is a pure function of (seed, automaton): Counter sweeps, one-shot
// calls, and any evaluation order produce byte-identical tables.
func cellSite(set, l, j int) uint64 {
	return uint64(set)*0x9e3779b97f4a7c15 + uint64(l)*0xbf58476d1ce4e5b9 + uint64(j)
}

// unionLookup is the read-only view of an index entry's union estimate
// for samplers.
func (e *wordEstimator) unionLookup(en *ixEntry, l int) efloat.E {
	if en.set < 0 {
		return e.wordLookup(en.targets[0], l)
	}
	v, _ := e.unions.Get(en.set, l)
	return v
}

// countFreshParallel runs the overlap-sampling loop for union branch j
// at length l: e.samples word draws, counting those not covered by an
// earlier branch. The draws are independent given the (already
// computed) memo tables, so they fan out across the trial's worker
// samplers; per-sample sub-RNGs keep the count identical for every
// worker count.
func (e *wordEstimator) countFreshParallel(targets []int, j, l int, site uint64) int {
	e.unionSamples += e.samples
	workers := e.workers
	if workers > e.samples {
		workers = e.samples
	}
	for len(e.workerSmps) < workers {
		e.workerSmps = append(e.workerSmps, e.newSampler(0))
	}
	if workers <= 1 {
		if len(e.workerSmps) == 0 {
			e.workerSmps = append(e.workerSmps, e.newSampler(0))
		}
		s := e.workerSmps[0]
		fresh := s.countFresh(targets, j, l, site, 0, e.samples, 1)
		e.rejections += s.rejections
		e.acceptCount += s.acceptChecks
		s.rejections, s.acceptChecks = 0, 0
		return fresh
	}
	counts := make([]int, workers)
	var busy []int64
	if e.timed {
		busy = make([]int64, workers)
		e.workerSpawns += int64(workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(context.Background(), pprof.Labels("pqe_engine", "countnfa", "pqe_stage", "overlap"), func(context.Context) {
				var t0 time.Time
				if busy != nil {
					t0 = time.Now()
				}
				counts[w] = e.workerSmps[w].countFresh(targets, j, l, site, w, e.samples, workers)
				if busy != nil {
					busy[w] = time.Since(t0).Nanoseconds()
				}
			})
		}(w)
	}
	wg.Wait()
	fresh := 0
	for w := 0; w < workers; w++ {
		fresh += counts[w]
		e.rejections += e.workerSmps[w].rejections
		e.acceptCount += e.workerSmps[w].acceptChecks
		e.workerSmps[w].rejections, e.workerSmps[w].acceptChecks = 0, 0
		if busy != nil {
			e.workerBusyNs += busy[w]
		}
	}
	return fresh
}

// sampleWordTop draws a word of length n from L_n(M) on the trial's
// persistent top-level sampling session, or nil if empty. topLevel(n)
// must have been computed.
func (e *wordEstimator) sampleWordTop(n int) []int {
	if e.top == nil {
		e.top = e.newSampler(uint64(e.seed) ^ splitmix.TopSamplerSalt)
	}
	return e.top.sampleTop(n)
}

// SampleWord draws one near-uniform word of length n from L_n(M) using a
// fresh estimator, or nil if the language is empty. This mirrors the
// uniform-generation facet of [5].
func SampleWord(m *NFA, n int, opts CountOptions) []int {
	opts = opts.withDefaults()
	e := newWordEstimator(m, opts)
	if e.topLevel(n).IsZero() {
		return nil
	}
	return e.sampleWordTop(n)
}
