package nfa

import (
	"encoding/binary"
	"math/big"
	"sort"
)

// ExactCount returns |L_n(M)| exactly, via lazy subset construction:
// in the determinized automaton every distinct accepted word of length n
// is a distinct path from the initial subset to an accepting subset, so
// a depth-indexed DP over reachable subsets counts words without
// double-counting runs. Worst-case exponential in |S|; intended as a
// test oracle and for small automata.
func ExactCount(m *NFA, n int) *big.Int {
	memo := make(map[string]*big.Int)
	var keyBuf []byte
	var count func(states []int, left int) *big.Int
	count = func(states []int, left int) *big.Int {
		if len(states) == 0 {
			return big.NewInt(0)
		}
		if left == 0 {
			for _, q := range states {
				if m.final.Has(q) {
					return big.NewInt(1)
				}
			}
			return big.NewInt(0)
		}
		keyBuf = appendSubsetKey(keyBuf[:0], states, left)
		key := string(keyBuf)
		if v, ok := memo[key]; ok {
			return v
		}
		total := big.NewInt(0)
		for _, a := range outSymbolsOfSet(m, states) {
			next := m.Step(states, a)
			total.Add(total, count(next, left-1))
		}
		memo[key] = total
		return total
	}
	return count(m.initial, n)
}

// EnumerateWords calls yield for every distinct word of length n in
// L(M), in lexicographic symbol-ID order, stopping early if yield
// returns false. Exponential; test oracle only.
func EnumerateWords(m *NFA, n int, yield func(word []int) bool) {
	word := make([]int, 0, n)
	var rec func(states []int, left int) bool
	rec = func(states []int, left int) bool {
		if left == 0 {
			for _, q := range states {
				if m.final.Has(q) {
					out := make([]int, len(word))
					copy(out, word)
					return yield(out)
				}
			}
			return true
		}
		for _, a := range outSymbolsOfSet(m, states) {
			next := m.Step(states, a)
			if len(next) == 0 {
				continue
			}
			word = append(word, a)
			cont := rec(next, left-1)
			word = word[:len(word)-1]
			if !cont {
				return false
			}
		}
		return true
	}
	rec(m.initial, n)
}

func outSymbolsOfSet(m *NFA, states []int) []int {
	seen := make(map[int]bool)
	var syms []int
	for _, q := range states {
		for _, a := range m.OutSymbols(q) {
			if !seen[a] {
				seen[a] = true
				syms = append(syms, a)
			}
		}
	}
	sort.Ints(syms)
	return syms
}

// appendSubsetKey appends a varint encoding of (left, states) — states
// are sorted and deduplicated, so the bytes identify the subset. Varint
// bytes replace the decimal-string keys this memo used to build: no
// integer formatting, and typically one byte per state.
func appendSubsetKey(dst []byte, states []int, left int) []byte {
	dst = binary.AppendUvarint(dst, uint64(left))
	for _, q := range states {
		dst = binary.AppendUvarint(dst, uint64(q))
	}
	return dst
}
