// Package nfa implements non-deterministic finite string automata
// (Section 2 of the paper) together with two counters for |L_n(M)|, the
// number of distinct strings of length n accepted:
//
//   - an exact counter based on lazy subset construction, used as a test
//     oracle and for small instances; and
//   - CountNFA, a randomized approximation scheme following the
//     structure of Arenas, Croquevielle, Jayaram and Riveros [5]:
//     per-(state, length) cardinality estimates and near-uniform
//     samplers, combined bottom-up, with overlaps between
//     non-deterministic branches resolved by sampling plus
//     polynomial-time membership tests.
//
// Counting distinct accepted strings (rather than accepting runs) is
// what makes the problem #P-hard and is exactly the quantity the
// reductions of the paper need: an accepted string encodes a satisfying
// subinstance once, even when many witness choices (runs) accept it.
//
// The approximate counter shares the architecture of the tree-side
// engine (internal/count): dense [state][length] memo tables
// (internal/dense), interned target-set union slots, bitset-based
// acceptance over a dense transition index cached on the automaton,
// pooled scratch, and an intra-trial worker pool with one deterministic
// splitmix64 stream per overlap sample (internal/splitmix), so results
// are bit-identical for a fixed seed at every Workers setting.
package nfa

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"pqe/internal/alphabet"
	"pqe/internal/bitset"
)

// NFA is a non-deterministic finite automaton (S, Σ, δ, I, F). States
// are dense ints in [0, NumStates).
type NFA struct {
	Symbols   *alphabet.Interner
	numStates int
	// trans[q][a] is the sorted set of targets δ(q, a).
	trans   []map[int][]int
	initial []int
	final   bitset.Set
	// version counts structural mutations; the cached dense index is
	// rebuilt when it falls behind. Mutating an automaton while counting
	// or acceptance-testing on it concurrently is not supported.
	version uint64
	idx     atomic.Pointer[denseIndex]
	// cplan caches the counting engine's per-automaton plan (pool of
	// runs and samplers over the dense index), keyed by version like
	// idx. See plan.go.
	cplan atomic.Pointer[wordPlan]
}

// New returns an empty NFA over a fresh alphabet.
func New() *NFA {
	return &NFA{Symbols: alphabet.New()}
}

// NewWithSymbols returns an empty NFA sharing an existing interner.
func NewWithSymbols(sym *alphabet.Interner) *NFA {
	return &NFA{Symbols: sym}
}

// AddState allocates a new state and returns its ID.
func (m *NFA) AddState() int {
	m.trans = append(m.trans, nil)
	m.numStates++
	m.version++
	return m.numStates - 1
}

// AddStates allocates n states and returns the first ID.
func (m *NFA) AddStates(n int) int {
	first := m.numStates
	for i := 0; i < n; i++ {
		m.AddState()
	}
	return first
}

// NumStates returns |S|.
func (m *NFA) NumStates() int { return m.numStates }

// AddTransition adds (q, a, r) to δ. Symbol is given by name and
// interned. Duplicate transitions are ignored.
func (m *NFA) AddTransition(q int, symbol string, r int) {
	m.AddTransitionSym(q, m.Symbols.Intern(symbol), r)
}

// AddTransitionSym adds (q, a, r) with an already-interned symbol ID.
func (m *NFA) AddTransitionSym(q, sym, r int) {
	m.checkState(q)
	m.checkState(r)
	if m.trans[q] == nil {
		m.trans[q] = make(map[int][]int)
	}
	targets := m.trans[q][sym]
	i := sort.SearchInts(targets, r)
	if i < len(targets) && targets[i] == r {
		return
	}
	targets = append(targets, 0)
	copy(targets[i+1:], targets[i:])
	targets[i] = r
	m.trans[q][sym] = targets
	m.version++
}

// SetTargetsSym installs targets as δ(q, sym) in one step, replacing
// any existing set. targets must be sorted ascending and duplicate-free;
// the automaton takes ownership of the slice (no copy), so the caller
// must not modify it afterwards. Builders that emit each (state, symbol)
// pair exactly once with naturally sorted targets use this to skip the
// per-element sorted-insert of AddTransitionSym.
func (m *NFA) SetTargetsSym(q, sym int, targets []int) {
	m.checkState(q)
	for i, r := range targets {
		m.checkState(r)
		if i > 0 && targets[i-1] >= r {
			panic(fmt.Sprintf("nfa: SetTargetsSym targets not sorted/unique: %v", targets))
		}
	}
	if len(targets) == 0 {
		return
	}
	if m.trans[q] == nil {
		m.trans[q] = make(map[int][]int, 2)
	}
	m.trans[q][sym] = targets
	m.version++
}

func (m *NFA) checkState(q int) {
	if q < 0 || q >= m.numStates {
		panic(fmt.Sprintf("nfa: state %d out of range [0,%d)", q, m.numStates))
	}
}

// SetInitial marks states as initial.
func (m *NFA) SetInitial(states ...int) {
	for _, q := range states {
		m.checkState(q)
		m.initial = append(m.initial, q)
	}
	sort.Ints(m.initial)
	m.initial = dedupInts(m.initial)
	m.version++
}

// SetFinal marks states as accepting.
func (m *NFA) SetFinal(states ...int) {
	for _, q := range states {
		m.checkState(q)
		for q/64 >= len(m.final) {
			m.final = append(m.final, 0)
		}
		m.final.Add(q)
	}
	m.version++
}

// Initial returns the sorted initial state set.
func (m *NFA) Initial() []int { return m.initial }

// IsFinal reports whether q ∈ F.
func (m *NFA) IsFinal(q int) bool { return m.final.Has(q) }

// Targets returns δ(q, a), sorted. The returned slice must not be
// modified.
func (m *NFA) Targets(q, sym int) []int {
	if m.trans[q] == nil {
		return nil
	}
	return m.trans[q][sym]
}

// OutSymbols returns the symbols with at least one transition out of q,
// sorted.
func (m *NFA) OutSymbols(q int) []int {
	if m.trans[q] == nil {
		return nil
	}
	syms := make([]int, 0, len(m.trans[q]))
	for a := range m.trans[q] {
		syms = append(syms, a)
	}
	sort.Ints(syms)
	return syms
}

// NumTransitions returns the number of transition tuples, the paper's
// measure of automaton size |M|.
func (m *NFA) NumTransitions() int {
	n := 0
	for _, bySym := range m.trans {
		for _, ts := range bySym {
			n += len(ts)
		}
	}
	return n
}

// EachTransition calls f for every transition tuple (q, a, r), in
// state-then-symbol order.
func (m *NFA) EachTransition(f func(from, sym, to int)) {
	for q := 0; q < m.numStates; q++ {
		for _, a := range m.OutSymbols(q) {
			for _, r := range m.Targets(q, a) {
				f(q, a, r)
			}
		}
	}
}

// Finals returns the sorted accepting states.
func (m *NFA) Finals() []int {
	out := make([]int, 0, m.final.Count())
	m.final.ForEach(func(q int) { out = append(out, q) })
	return out
}

// Step maps a sorted state set through symbol a.
func (m *NFA) Step(states []int, sym int) []int {
	var out []int
	for _, q := range states {
		out = append(out, m.Targets(q, sym)...)
	}
	sort.Ints(out)
	return dedupInts(out)
}

// Accepts reports whether the word (a sequence of symbol IDs) is in
// L(M).
func (m *NFA) Accepts(word []int) bool {
	return m.AcceptsFrom(m.initial, word)
}

// AcceptsFrom reports whether the word is accepted starting from any
// state in the given set.
func (m *NFA) AcceptsFrom(states []int, word []int) bool {
	cur := states
	for _, a := range word {
		cur = m.Step(cur, a)
		if len(cur) == 0 {
			return false
		}
	}
	for _, q := range cur {
		if m.final.Has(q) {
			return true
		}
	}
	return false
}

// WordString renders a word using the symbol names.
func (m *NFA) WordString(word []int) string {
	parts := make([]string, len(word))
	for i, a := range word {
		parts[i] = m.Symbols.Name(a)
	}
	return fmt.Sprintf("%v", parts)
}

func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// ixEntry is one state's transitions on one symbol in the dense index:
// the sorted target set δ(q, a), plus the interned ID of that set when
// it has more than one element (-1 for singletons). Entries with equal
// target sets share the interned ID, and with it the counting engine's
// union memo row.
type ixEntry struct {
	sym     int
	targets []int // aliases the automaton's sorted δ(q, a) slice
	set     int   // interned target-set ID, -1 when len(targets) == 1
}

// denseIndex is the frozen transition structure the counting, sampling
// and trimming hot paths run on: per-state symbol entries in symbol
// order (one slice scan instead of a map lookup plus sort per step),
// the interned multi-element target sets (the union memo rows), and a
// CSR reverse adjacency for backward closures. It is cached on the NFA
// and rebuilt lazily after mutations; concurrent readers may race to
// rebuild, which is idempotent.
type denseIndex struct {
	built  uint64
	states [][]ixEntry
	sets   [][]int // interned target sets with ≥ 2 elements
	topSet int     // interned initial set, -1 when |I| ≤ 1
	// Reverse CSR: the sources of transitions into q are
	// inFrom[inStart[q]:inStart[q+1]] (one entry per transition tuple).
	inStart []int32
	inFrom  []int32
}

// index returns the dense index, rebuilding it if the automaton was
// mutated since the last build.
func (m *NFA) index() *denseIndex {
	if idx := m.idx.Load(); idx != nil && idx.built == m.version {
		return idx
	}
	idx := &denseIndex{built: m.version, topSet: -1}
	setIDs := make(map[string]int)
	var keyBuf []byte
	intern := func(targets []int) int {
		keyBuf = appendSetKey(keyBuf[:0], targets)
		if id, ok := setIDs[string(keyBuf)]; ok {
			return id
		}
		id := len(idx.sets)
		setIDs[string(keyBuf)] = id
		idx.sets = append(idx.sets, targets)
		return id
	}
	idx.states = make([][]ixEntry, m.numStates)
	counts := make([]int32, m.numStates+1)
	total := 0
	for q := 0; q < m.numStates; q++ {
		if len(m.trans[q]) == 0 {
			continue
		}
		// Symbols must be visited in sorted order: interned set IDs feed
		// the counting engine's per-cell RNG stream derivation, so their
		// assignment order must be a function of the automaton's
		// structure, not of map iteration.
		syms := make([]int, 0, len(m.trans[q]))
		for a := range m.trans[q] {
			syms = append(syms, a)
		}
		sort.Ints(syms)
		entries := make([]ixEntry, 0, len(syms))
		for _, a := range syms {
			targets := m.trans[q][a]
			set := -1
			if len(targets) > 1 {
				set = intern(targets)
			}
			entries = append(entries, ixEntry{sym: a, targets: targets, set: set})
			for _, r := range targets {
				counts[r+1]++
			}
			total += len(targets)
		}
		idx.states[q] = entries
	}
	if len(m.initial) > 1 {
		idx.topSet = intern(m.initial)
	}
	idx.inStart = counts
	for q := 1; q <= m.numStates; q++ {
		idx.inStart[q] += idx.inStart[q-1]
	}
	idx.inFrom = make([]int32, total)
	fill := make([]int32, m.numStates)
	copy(fill, idx.inStart[:m.numStates])
	for q := 0; q < m.numStates; q++ {
		for _, en := range idx.states[q] {
			for _, r := range en.targets {
				idx.inFrom[fill[r]] = int32(q)
				fill[r]++
			}
		}
	}
	m.idx.Store(idx)
	return idx
}

// targetsOf returns δ(q, a) through the index's sorted entries. States
// in the reductions carry only a handful of out-symbols, so a linear
// scan beats both hashing and binary search.
func (x *denseIndex) targetsOf(q, a int) []int {
	for i := range x.states[q] {
		if s := x.states[q][i].sym; s == a {
			return x.states[q][i].targets
		} else if s > a {
			return nil
		}
	}
	return nil
}

// appendSetKey appends a varint encoding of the sorted target set — the
// interner's identity key. States are small non-negative integers, so
// most sets encode to one byte per element.
func appendSetKey(dst []byte, targets []int) []byte {
	for _, t := range targets {
		dst = binary.AppendUvarint(dst, uint64(t))
	}
	return dst
}
