// Package nfa implements non-deterministic finite string automata
// (Section 2 of the paper) together with two counters for |L_n(M)|, the
// number of distinct strings of length n accepted:
//
//   - an exact counter based on lazy subset construction, used as a test
//     oracle and for small instances; and
//   - CountNFA, a randomized approximation scheme following the
//     structure of Arenas, Croquevielle, Jayaram and Riveros [5]:
//     per-(state, length) cardinality estimates and near-uniform
//     samplers, combined bottom-up, with overlaps between
//     non-deterministic branches resolved by sampling plus
//     polynomial-time membership tests.
//
// Counting distinct accepted strings (rather than accepting runs) is
// what makes the problem #P-hard and is exactly the quantity the
// reductions of the paper need: an accepted string encodes a satisfying
// subinstance once, even when many witness choices (runs) accept it.
package nfa

import (
	"fmt"
	"sort"

	"pqe/internal/alphabet"
)

// NFA is a non-deterministic finite automaton (S, Σ, δ, I, F). States
// are dense ints in [0, NumStates).
type NFA struct {
	Symbols   *alphabet.Interner
	numStates int
	// trans[q][a] is the sorted set of targets δ(q, a).
	trans   []map[int][]int
	initial []int
	final   map[int]bool
}

// New returns an empty NFA over a fresh alphabet.
func New() *NFA {
	return &NFA{Symbols: alphabet.New(), final: make(map[int]bool)}
}

// NewWithSymbols returns an empty NFA sharing an existing interner.
func NewWithSymbols(sym *alphabet.Interner) *NFA {
	return &NFA{Symbols: sym, final: make(map[int]bool)}
}

// AddState allocates a new state and returns its ID.
func (m *NFA) AddState() int {
	m.trans = append(m.trans, nil)
	m.numStates++
	return m.numStates - 1
}

// AddStates allocates n states and returns the first ID.
func (m *NFA) AddStates(n int) int {
	first := m.numStates
	for i := 0; i < n; i++ {
		m.AddState()
	}
	return first
}

// NumStates returns |S|.
func (m *NFA) NumStates() int { return m.numStates }

// AddTransition adds (q, a, r) to δ. Symbol is given by name and
// interned. Duplicate transitions are ignored.
func (m *NFA) AddTransition(q int, symbol string, r int) {
	m.AddTransitionSym(q, m.Symbols.Intern(symbol), r)
}

// AddTransitionSym adds (q, a, r) with an already-interned symbol ID.
func (m *NFA) AddTransitionSym(q, sym, r int) {
	m.checkState(q)
	m.checkState(r)
	if m.trans[q] == nil {
		m.trans[q] = make(map[int][]int)
	}
	targets := m.trans[q][sym]
	i := sort.SearchInts(targets, r)
	if i < len(targets) && targets[i] == r {
		return
	}
	targets = append(targets, 0)
	copy(targets[i+1:], targets[i:])
	targets[i] = r
	m.trans[q][sym] = targets
}

func (m *NFA) checkState(q int) {
	if q < 0 || q >= m.numStates {
		panic(fmt.Sprintf("nfa: state %d out of range [0,%d)", q, m.numStates))
	}
}

// SetInitial marks states as initial.
func (m *NFA) SetInitial(states ...int) {
	for _, q := range states {
		m.checkState(q)
		m.initial = append(m.initial, q)
	}
	sort.Ints(m.initial)
	m.initial = dedupInts(m.initial)
}

// SetFinal marks states as accepting.
func (m *NFA) SetFinal(states ...int) {
	for _, q := range states {
		m.checkState(q)
		m.final[q] = true
	}
}

// Initial returns the sorted initial state set.
func (m *NFA) Initial() []int { return m.initial }

// IsFinal reports whether q ∈ F.
func (m *NFA) IsFinal(q int) bool { return m.final[q] }

// Targets returns δ(q, a), sorted. The returned slice must not be
// modified.
func (m *NFA) Targets(q, sym int) []int {
	if m.trans[q] == nil {
		return nil
	}
	return m.trans[q][sym]
}

// OutSymbols returns the symbols with at least one transition out of q,
// sorted.
func (m *NFA) OutSymbols(q int) []int {
	if m.trans[q] == nil {
		return nil
	}
	syms := make([]int, 0, len(m.trans[q]))
	for a := range m.trans[q] {
		syms = append(syms, a)
	}
	sort.Ints(syms)
	return syms
}

// NumTransitions returns the number of transition tuples, the paper's
// measure of automaton size |M|.
func (m *NFA) NumTransitions() int {
	n := 0
	for _, bySym := range m.trans {
		for _, ts := range bySym {
			n += len(ts)
		}
	}
	return n
}

// EachTransition calls f for every transition tuple (q, a, r), in
// state-then-symbol order.
func (m *NFA) EachTransition(f func(from, sym, to int)) {
	for q := 0; q < m.numStates; q++ {
		for _, a := range m.OutSymbols(q) {
			for _, r := range m.Targets(q, a) {
				f(q, a, r)
			}
		}
	}
}

// Finals returns the sorted accepting states.
func (m *NFA) Finals() []int {
	out := make([]int, 0, len(m.final))
	for q := range m.final {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// Step maps a sorted state set through symbol a.
func (m *NFA) Step(states []int, sym int) []int {
	var out []int
	for _, q := range states {
		out = append(out, m.Targets(q, sym)...)
	}
	sort.Ints(out)
	return dedupInts(out)
}

// Accepts reports whether the word (a sequence of symbol IDs) is in
// L(M).
func (m *NFA) Accepts(word []int) bool {
	return m.AcceptsFrom(m.initial, word)
}

// AcceptsFrom reports whether the word is accepted starting from any
// state in the given set.
func (m *NFA) AcceptsFrom(states []int, word []int) bool {
	cur := states
	for _, a := range word {
		cur = m.Step(cur, a)
		if len(cur) == 0 {
			return false
		}
	}
	for _, q := range cur {
		if m.final[q] {
			return true
		}
	}
	return false
}

// WordString renders a word using the symbol names.
func (m *NFA) WordString(word []int) string {
	parts := make([]string, len(word))
	for i, a := range word {
		parts[i] = m.Symbols.Name(a)
	}
	return fmt.Sprintf("%v", parts)
}

func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
