package nfa

import "sort"

// Trim returns an equivalent automaton restricted to useful states:
// those reachable from an initial state and co-reachable to an
// accepting state. L(Trim(M)) = L(M) at every length; the counting
// estimator's per-(state, length) tables shrink accordingly. Both
// closures run on the automaton's dense index — forward over the
// per-state entries, backward over the reverse CSR adjacency — rather
// than rebuilding an incoming-edge map per call.
func (m *NFA) Trim() *NFA {
	ix := m.index()
	reachable := make([]bool, m.numStates)
	queue := append([]int(nil), m.initial...)
	for _, q := range queue {
		reachable[q] = true
	}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, en := range ix.states[q] {
			for _, r := range en.targets {
				if !reachable[r] {
					reachable[r] = true
					queue = append(queue, r)
				}
			}
		}
	}
	// Co-reachable: backward closure from the accepting states over the
	// reverse CSR.
	coreach := make([]bool, m.numStates)
	queue = queue[:0]
	m.final.ForEach(func(q int) {
		coreach[q] = true
		queue = append(queue, q)
	})
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, p := range ix.inFrom[ix.inStart[q]:ix.inStart[q+1]] {
			if !coreach[p] {
				coreach[p] = true
				queue = append(queue, int(p))
			}
		}
	}

	keep := make([]int, m.numStates)
	out := NewWithSymbols(m.Symbols)
	for q := 0; q < m.numStates; q++ {
		if reachable[q] && coreach[q] {
			keep[q] = out.AddState()
		} else {
			keep[q] = -1
		}
	}
	var initial []int
	for _, q := range m.initial {
		if keep[q] >= 0 {
			initial = append(initial, keep[q])
		}
	}
	// An automaton with an empty language keeps one initial state.
	if len(initial) == 0 && len(m.initial) > 0 {
		q := out.AddState()
		initial = []int{q}
	}
	sort.Ints(initial)
	out.SetInitial(initial...)
	m.final.ForEach(func(q int) {
		if keep[q] >= 0 {
			out.SetFinal(keep[q])
		}
	})
	// Copy transitions per (state, symbol) entry: keep is monotone over
	// surviving states, so a filtered-and-renumbered target set stays
	// sorted and installs in one step; all sets share one backing
	// buffer.
	total := 0
	for q := 0; q < m.numStates; q++ {
		if keep[q] < 0 {
			continue
		}
		for _, en := range ix.states[q] {
			total += len(en.targets)
		}
	}
	buf := make([]int, 0, total)
	for q := 0; q < m.numStates; q++ {
		if keep[q] < 0 {
			continue
		}
		for _, en := range ix.states[q] {
			start := len(buf)
			for _, r := range en.targets {
				if keep[r] >= 0 {
					buf = append(buf, keep[r])
				}
			}
			if len(buf) > start {
				out.SetTargetsSym(keep[q], en.sym, buf[start:len(buf):len(buf)])
			}
		}
	}
	return out
}
