package nfa

import (
	"math/rand"
	"sync"
	"testing"

	"pqe/internal/efloat"
	"pqe/internal/obs"
	"pqe/internal/splitmix"
)

// Plan caching contract: the first call on an automaton builds the
// plan, every later call (and session) reuses it, and a structural
// mutation invalidates it. Pinned through the registry counters so the
// behavior stays observable.
func TestPlanCacheReuse(t *testing.T) {
	m := buildAB()
	reg := obs.NewRegistry()
	sc := obs.NewScope(nil, reg, nil)
	opts := CountOptions{Epsilon: 0.2, Trials: 2, Seed: 3, Obs: sc}
	Count(m, 6, opts)
	if h, mi := reg.Counter("countnfa_plan_cache_hits_total").Value(),
		reg.Counter("countnfa_plan_cache_misses_total").Value(); h != 0 || mi != 1 {
		t.Fatalf("first call: hits=%d misses=%d, want 0/1", h, mi)
	}
	Count(m, 6, opts)
	Count(m, 8, opts)
	if h, mi := reg.Counter("countnfa_plan_cache_hits_total").Value(),
		reg.Counter("countnfa_plan_cache_misses_total").Value(); h != 2 || mi != 1 {
		t.Fatalf("after reuse: hits=%d misses=%d, want 2/1", h, mi)
	}
}

func TestPlanRebuildAfterMutation(t *testing.T) {
	m := buildAB()
	reg := obs.NewRegistry()
	sc := obs.NewScope(nil, reg, nil)
	opts := CountOptions{Epsilon: 0.2, Trials: 2, Seed: 3, Obs: sc}
	Count(m, 6, opts)
	q := m.AddState()
	m.AddTransition(0, "c", q)
	m.SetFinal(q)
	Count(m, 6, opts)
	if mi := reg.Counter("countnfa_plan_cache_misses_total").Value(); mi != 2 {
		t.Fatalf("mutation did not invalidate the plan: misses=%d, want 2", mi)
	}
}

// Concurrent sessions over one automaton share the plan; run under
// -race this pins that the shared half really is immutable and the
// pooled halves are handed out safely.
func TestConcurrentSessionsSharePlan(t *testing.T) {
	m := buildAB()
	base := Count(m, 8, CountOptions{Epsilon: 0.2, Trials: 2, Seed: 9})
	var wg sync.WaitGroup
	errs := make([]string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				got := Count(m, 8, CountOptions{Epsilon: 0.2, Trials: 2, Seed: 9, MaxProcs: 1 + g%3})
				if got.Cmp(base) != 0 {
					errs[g] = got.String()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e != "" {
			t.Fatalf("goroutine %d: concurrent estimate %s, want %s", g, e, base)
		}
	}
}

// The MaxProcs knob must honor the same bit-identity contract as the
// deprecated Workers/Parallel pair, including mixed settings.
func TestCountDeterministicAcrossMaxProcs(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 6; trial++ {
		m := randomNFA(rng)
		n := 2 + rng.Intn(6)
		base := Count(m, n, CountOptions{Epsilon: 0.2, Trials: 3, Seed: 11})
		for _, procs := range []int{1, 2, 8} {
			got := Count(m, n, CountOptions{Epsilon: 0.2, Trials: 3, Seed: 11, MaxProcs: procs})
			if got.Cmp(base) != 0 {
				t.Fatalf("trial %d: MaxProcs=%d gave %v, want %v", trial, procs, got, base)
			}
		}
		// MaxProcs overrides the deprecated pair when both are set.
		got := Count(m, n, CountOptions{Epsilon: 0.2, Trials: 3, Seed: 11, MaxProcs: 3, Workers: 5, Parallel: true})
		if got.Cmp(base) != 0 {
			t.Fatalf("trial %d: mixed MaxProcs/Workers gave %v, want %v", trial, got, base)
		}
	}
}

// rowFromWeights builds a prefix row exactly the way prefix.go does.
func rowFromWeights(ws []efloat.E) *prefixRow {
	p := &prefixRow{cum: make([]efloat.E, len(ws)), last: -1}
	acc := efloat.Zero
	for i, w := range ws {
		if !w.IsZero() {
			p.last = i
		}
		acc = acc.Add(w)
		p.cum[i] = acc
	}
	return p
}

// pickRow must match the reference linear scan draw-for-draw on the
// same RNG stream: same index, same single variate consumed.
func TestPickRowMatchesPick(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(8)
		ws := make([]efloat.E, k)
		for i := range ws {
			switch rng.Intn(3) {
			case 0: // zero weight
			case 1:
				ws[i] = efloat.FromInt(1 + rng.Int63n(1000))
			default:
				ws[i] = efloat.Pow2(int64(rng.Intn(400) - 200)).MulFloat(1 + rng.Float64())
			}
		}
		row := rowFromWeights(ws)
		seed := rng.Uint64()
		s1 := &sampler{rng: splitmix.New(seed)}
		s2 := &sampler{rng: splitmix.New(seed)}
		for draw := 0; draw < 4; draw++ {
			a, b := s1.pick(ws), s2.pickRow(row)
			if a != b {
				t.Fatalf("trial %d draw %d: pick=%d pickRow=%d weights=%v", trial, draw, a, b, ws)
			}
			if s1.rng.Uint64() != s2.rng.Uint64() {
				t.Fatalf("trial %d draw %d: streams diverged", trial, draw)
			}
		}
	}
}

func TestPickEdgeCases(t *testing.T) {
	zero4 := make([]efloat.E, 4)
	s := &sampler{rng: splitmix.New(1)}
	if got := s.pick(zero4); got != -1 {
		t.Errorf("pick(all zero) = %d, want -1", got)
	}
	if got := s.pickRow(rowFromWeights(zero4)); got != -1 {
		t.Errorf("pickRow(all zero) = %d, want -1", got)
	}
	if got := s.pickRow(&prefixRow{}); got != -1 {
		t.Errorf("pickRow(empty) = %d, want -1", got)
	}
	// All-zero rows must not consume a variate.
	fresh := splitmix.New(9)
	s.rng = splitmix.New(9)
	s.pick(zero4)
	s.pickRow(rowFromWeights(zero4))
	if s.rng.Uint64() != fresh.Uint64() {
		t.Error("zero-total pick consumed a variate")
	}

	// A single nonzero tail weight must always be chosen.
	tail := []efloat.E{efloat.Zero, efloat.Zero, efloat.One}
	row := rowFromWeights(tail)
	if row.last != 2 {
		t.Fatalf("last = %d, want 2", row.last)
	}
	for seed := uint64(0); seed < 50; seed++ {
		s.rng = splitmix.New(seed)
		if got := s.pick(tail); got != 2 {
			t.Fatalf("seed %d: pick(tail) = %d, want 2", seed, got)
		}
		s.rng = splitmix.New(seed)
		if got := s.pickRow(row); got != 2 {
			t.Fatalf("seed %d: pickRow(tail) = %d, want 2", seed, got)
		}
	}

	// Trailing zero weights: never land past the last nonzero weight.
	trail := []efloat.E{efloat.One, efloat.FromInt(3), efloat.Zero, efloat.Zero}
	row = rowFromWeights(trail)
	for seed := uint64(0); seed < 50; seed++ {
		s.rng = splitmix.New(seed)
		if got := s.pickRow(row); got > row.last {
			t.Fatalf("seed %d: pickRow returned %d past last=%d", seed, got, row.last)
		}
	}
}
