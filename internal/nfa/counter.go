package nfa

import (
	"sort"

	"pqe/internal/efloat"
)

// Counter is a reusable counting session over one automaton: repeated
// Count calls share the per-trial memo tables, so sweeping |L_n(M)|
// over many lengths costs little more than the largest length alone
// (the tables are indexed by (state, length) and smaller lengths are
// subproblems of larger ones). The automaton must not be mutated while
// a Counter holds it.
type Counter struct {
	m      *NFA
	trials []*wordEstimator
}

// NewCounter prepares a counting session with opts.Trials independent
// trial estimators.
func NewCounter(m *NFA, opts CountOptions) *Counter {
	opts = opts.withDefaults()
	ix := m.index()
	c := &Counter{m: m}
	for t := 0; t < opts.Trials; t++ {
		c.trials = append(c.trials, newWordEstimatorSeeded(m, ix, opts, opts.Rng.Int63()))
	}
	return c
}

// Count approximates |L_n(M)| (median across the session's trials).
func (c *Counter) Count(n int) efloat.E {
	results := make([]efloat.E, len(c.trials))
	for t, e := range c.trials {
		results[t] = e.topLevel(n)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Less(results[j]) })
	return results[len(results)/2]
}

// Sample draws a near-uniform word of length n using the first trial's
// tables, or nil if the language at that length is (estimated) empty.
func (c *Counter) Sample(n int) []int {
	e := c.trials[0]
	if e.topLevel(n).IsZero() {
		return nil
	}
	return e.sampleWordTop(n)
}

// RecordStats adds the session's accumulated effort counters to s.
func (c *Counter) RecordStats(s *Stats) {
	for _, e := range c.trials {
		s.record(e)
	}
}
