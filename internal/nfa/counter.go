package nfa

import (
	"sort"

	"pqe/internal/efloat"
	"pqe/internal/sched"
)

// Counter is a reusable counting session over one automaton: repeated
// Count calls share the per-trial memo tables, so sweeping |L_n(M)|
// over many lengths costs little more than the largest length alone
// (the tables are indexed by (state, length) and smaller lengths are
// subproblems of larger ones). The session shares the automaton's
// cached plan with every other session and one-shot call, and keeps its
// runs and worker samplers for its whole lifetime (they are never
// returned to the plan's pool — the sweep cache is the point). The
// automaton must not be mutated while a Counter holds it.
type Counter struct {
	m      *NFA
	pl     *wordPlan
	procs  int
	call   *callState
	trials []*wordRun
}

// NewCounter prepares a counting session with opts.Trials independent
// trial runs.
func NewCounter(m *NFA, opts CountOptions) *Counter {
	opts = opts.withDefaults()
	pl, _ := planFor(m)
	c := &Counter{m: m, pl: pl, procs: opts.procs, call: newCallState(pl, opts.procs)}
	for t := 0; t < opts.Trials; t++ {
		c.trials = append(c.trials, pl.getRun(opts, opts.Rng.Int63()))
	}
	return c
}

// Count approximates |L_n(M)| (median across the session's trials).
func (c *Counter) Count(n int) efloat.E {
	results := make([]efloat.E, len(c.trials))
	sched.Run(sched.Config{Procs: c.procs, Trials: len(c.trials), Labels: schedLabels}, func(w *sched.Worker, t int) {
		r := c.trials[t]
		r.w, r.call = w, c.call
		r.ensurePfx(n)
		results[t] = r.topLevel(n)
	})
	sort.Slice(results, func(i, j int) bool { return results[i].Less(results[j]) })
	return results[len(results)/2]
}

// Sample draws a near-uniform word of length n using the first trial's
// tables, or nil if the language at that length is (estimated) empty.
// Successive samples advance the trial's persistent sampling stream.
func (c *Counter) Sample(n int) []int {
	r := c.trials[0]
	var word []int
	sched.Run(sched.Config{Procs: c.procs, Trials: 1, Labels: schedLabels}, func(w *sched.Worker, _ int) {
		r.w, r.call = w, c.call
		r.ensurePfx(n)
		if r.topLevel(n).IsZero() {
			return
		}
		word = r.topSampler().sampleTop(n)
	})
	return word
}

// RecordStats adds the session's accumulated effort counters to s.
func (c *Counter) RecordStats(s *Stats) {
	for _, r := range c.trials {
		s.record(r)
		if r.top != nil {
			s.Rejections += r.top.rejections
		}
	}
	rej, _ := c.call.totals()
	s.Rejections += rej
}
