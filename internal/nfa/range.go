package nfa

import (
	"fmt"
	"math"
	"time"

	"pqe/internal/efloat"
	"pqe/internal/obs"
	"pqe/internal/sched"
)

// ResolveSchedule reports the resolved trial schedule of a Count call
// with these options: the defaulted (epsilon, trials, samples) triple.
// A shard coordinator ships the resolved values to its workers so every
// process runs the exact schedule the local call would, regardless of
// which side applied the defaults.
func (o CountOptions) ResolveSchedule() (epsilon float64, trials, samples int) {
	d := o.withDefaults()
	return d.Epsilon, d.Trials, d.Samples
}

// CountRange executes trials [lo, hi) of the fixed Trials schedule and
// returns their estimates in trial order. Trial t's seed is the t-th
// draw of the options' PRNG — exactly the seed Count would hand the
// same trial — so the returned estimates are bit-identical to the
// corresponding slice of a local Count call, no matter how the full
// range is partitioned across calls or processes. The caller (the
// shard coordinator, via internal/core) owns the median merge and the
// anytime batch boundaries.
func CountRange(m *NFA, n int, opts CountOptions, lo, hi int) ([]efloat.E, error) {
	opts = opts.withDefaults()
	if lo < 0 || hi < lo || hi > opts.Trials {
		return nil, fmt.Errorf("nfa: trial range [%d, %d) outside schedule [0, %d)", lo, hi, opts.Trials)
	}
	// Draw every trial seed so seeds[t] is a function of the schedule,
	// never of the requested range.
	seeds := make([]int64, opts.Trials)
	for t := range seeds {
		seeds[t] = opts.Rng.Int63()
	}
	if hi == lo {
		return nil, nil
	}
	pl, planHit := planFor(m)
	sc, span := opts.Obs.Span("count.nfa_range")
	if span != nil {
		span.SetAttr("n", n)
		span.SetAttr("states", m.numStates)
		span.SetAttr("trial_lo", lo)
		span.SetAttr("trial_hi", hi)
		span.SetAttr("trials", opts.Trials)
		span.SetAttr("epsilon", opts.Epsilon)
		span.SetAttr("workers", opts.procs)
	}
	conv := sc.Convergence()
	callID := conv.NextCall()
	timed := sc.Registry() != nil
	callStart := time.Time{}
	if conv != nil || span != nil || timed {
		callStart = time.Now()
	}
	results := make([]efloat.E, hi-lo)
	runs := make([]*wordRun, hi-lo)
	call := newCallState(pl, opts.procs)
	st := sched.Run(sched.Config{
		Procs:  opts.procs,
		Trials: hi - lo,
		Timed:  timed,
		Labels: schedLabels,
	}, func(w *sched.Worker, i int) {
		if opts.cancelled() {
			return
		}
		t := lo + i
		tspan := span.Start("trial")
		var tt0 time.Time
		if conv != nil || tspan != nil {
			tt0 = time.Now()
		}
		r := pl.getRun(opts, seeds[t])
		r.w, r.call = w, call
		r.ensurePfx(n)
		results[i] = r.topLevel(n)
		runs[i] = r
		log2 := math.Inf(-1)
		if !results[i].IsZero() {
			log2 = results[i].Log2()
		}
		if tspan != nil {
			tspan.SetAttr("trial", t)
			tspan.SetAttr("union_samples", r.unionSamples)
			tspan.End()
		}
		if conv != nil {
			conv.Record(obs.TrialRecord{
				Engine:       "countnfa",
				Call:         callID,
				Trial:        t,
				Trials:       opts.Trials,
				Epsilon:      opts.Epsilon,
				Log2Estimate: log2,
				UnionSamples: r.unionSamples,
				Elapsed:      time.Since(tt0),
			})
		}
	})
	if reg := sc.Registry(); reg != nil {
		flushRegistry(reg, pl, runs, call, st, planHit, time.Since(callStart))
	}
	span.End()
	pl.release(runs, call)
	if opts.cancelled() {
		return nil, opts.Ctx.Err()
	}
	return results, nil
}
