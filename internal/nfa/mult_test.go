package nfa

import (
	"math/big"
	"testing"

	"pqe/internal/alphabet"
)

// multWordCount builds start --x,mult,digits--> end and counts accepted
// words of length 1+digits.
func multWordCount(t *testing.T, mult int64, digits int) int64 {
	t.Helper()
	in := alphabet.New()
	ma := NewMultNFA(in)
	start := ma.AddState()
	end := ma.AddState()
	ma.SetInitial(start)
	ma.SetFinal(end)
	if err := ma.AddTransition(start, in.Intern("x"), big.NewInt(mult), digits, end); err != nil {
		t.Fatal(err)
	}
	out := ma.Translate()
	return ExactCount(out, 1+digits).Int64()
}

func TestMultNFACounts(t *testing.T) {
	for mult := int64(0); mult <= 16; mult++ {
		minDigits := 0
		if mult > 1 {
			minDigits = new(big.Int).Sub(big.NewInt(mult), big.NewInt(1)).BitLen()
		}
		for digits := minDigits; digits <= minDigits+2; digits++ {
			if got := multWordCount(t, mult, digits); got != mult {
				t.Errorf("mult=%d digits=%d: %d words accepted", mult, digits, got)
			}
		}
	}
}

func TestMultNFAValidation(t *testing.T) {
	in := alphabet.New()
	ma := NewMultNFA(in)
	s := ma.AddState()
	e := ma.AddState()
	ma.SetInitial(s)
	ma.SetFinal(e)
	if err := ma.AddTransition(s, in.Intern("x"), big.NewInt(5), 2, e); err == nil {
		t.Error("5 > 2^2 accepted")
	}
	if err := ma.AddTransition(s, in.Intern("x"), big.NewInt(2), 0, e); err == nil {
		t.Error("mult 2 with 0 digits accepted")
	}
	if err := ma.AddTransition(s, in.Intern("x"), big.NewInt(-1), 0, e); err == nil {
		t.Error("negative multiplier accepted")
	}
	if err := ma.AddTransition(9, in.Intern("x"), big.NewInt(1), 0, e); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func TestMultNFAChainComposition(t *testing.T) {
	// Two weighted transitions in sequence multiply: 3 × 2 = 6 words.
	in := alphabet.New()
	ma := NewMultNFA(in)
	s := ma.AddState()
	m := ma.AddState()
	e := ma.AddState()
	ma.SetInitial(s)
	ma.SetFinal(e)
	if err := ma.AddTransition(s, in.Intern("a"), big.NewInt(3), 2, m); err != nil {
		t.Fatal(err)
	}
	if err := ma.AddTransition(m, in.Intern("b"), big.NewInt(2), 1, e); err != nil {
		t.Fatal(err)
	}
	out := ma.Translate()
	// Word: a, 2 digits, b, 1 digit → length 5.
	if got := ExactCount(out, 5).Int64(); got != 6 {
		t.Errorf("composed count = %d, want 6", got)
	}
}

func TestEachTransitionAndFinals(t *testing.T) {
	m := New()
	q := m.AddState()
	r := m.AddState()
	m.AddTransition(q, "a", r)
	m.AddTransition(r, "b", q)
	m.SetFinal(r)
	n := 0
	m.EachTransition(func(from, sym, to int) { n++ })
	if n != 2 {
		t.Errorf("EachTransition visited %d", n)
	}
	if f := m.Finals(); len(f) != 1 || f[0] != r {
		t.Errorf("Finals = %v", f)
	}
}
