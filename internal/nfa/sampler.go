package nfa

import (
	"math/bits"

	"pqe/internal/bitset"
	"pqe/internal/efloat"
	"pqe/internal/splitmix"
)

// sampler is a sampling session over a frozen estimator: it draws words
// reading the memo tables and the automaton's dense index but never
// writing them, so any number of samplers may run concurrently over one
// estimator. All scratch state (subset-simulation bitsets, weight
// buffers, word buffer, rejection counter) lives here, one sampler per
// goroutine.
//
// The invariant the read-only lookups rely on: a sampler is only ever
// asked for (state, length) pairs whose estimates were computed — the
// estimation pass at a given length computes exactly the sub-estimates
// its sampling consults (all strictly smaller lengths), and the
// top-level APIs run topLevel before sampling.
type sampler struct {
	e          *wordEstimator
	rng        splitmix.Stream
	cur, next  bitset.Set   // subset-simulation scratch for acceptsSet
	wfree      [][]efloat.E // free list of weight buffers
	wordBuf    []int        // transient word for overlap testing
	rejections int
	// acceptChecks counts subset-simulation membership tests (one per
	// acceptsSet call), flushed to the estimator like rejections.
	acceptChecks int
}

func (e *wordEstimator) newSampler(state uint64) *sampler {
	return &sampler{
		e:    e,
		rng:  splitmix.New(state),
		cur:  bitset.New(e.m.numStates),
		next: bitset.New(e.m.numStates),
	}
}

// getW borrows a weight buffer of length n from the free list; putW
// returns it. A free list rather than a single scratch slice because
// the canonical-rejection retry loop holds its weights across nested
// sampling calls.
func (s *sampler) getW(n int) []efloat.E {
	if k := len(s.wfree); k > 0 {
		w := s.wfree[k-1]
		s.wfree = s.wfree[:k-1]
		if cap(w) >= n {
			return w[:n]
		}
	}
	return make([]efloat.E, n)
}

func (s *sampler) putW(w []efloat.E) {
	s.wfree = append(s.wfree, w)
}

// pick returns an index with probability proportional to the weights,
// or -1 if all are zero.
func (s *sampler) pick(weights []efloat.E) int {
	total := efloat.Sum(weights...)
	if total.IsZero() {
		return -1
	}
	target := total.MulFloat(s.rng.Float64())
	acc := efloat.Zero
	last := -1
	for i, w := range weights {
		if w.IsZero() {
			continue
		}
		last = i
		acc = acc.Add(w)
		if target.Less(acc) {
			return i
		}
	}
	return last
}

// countFresh draws the overlap samples start, start+stride, … < samples
// for union branch j at length l and counts those landing outside all
// earlier branches. Each sample runs on its own derived PRNG, so the
// count is independent of how samples are partitioned across workers.
func (s *sampler) countFresh(targets []int, j, l int, site uint64, start, samples, stride int) int {
	if cap(s.wordBuf) < l {
		s.wordBuf = make([]int, l)
	}
	buf := s.wordBuf[:l]
	fresh := 0
	for i := start; i < samples; i += stride {
		s.rng = splitmix.Derive(s.e.seed, site, i)
		if !s.sampleFrom(targets[j], 0, buf) {
			continue
		}
		if !s.acceptsSet(targets[:j], buf) {
			fresh++
		}
	}
	return fresh
}

// sampleFrom fills out[pos:] with a near-uniform word from
// L(q, len(out)−pos), reporting false if the language is (estimated)
// empty. The word is built in place: the leading symbol is drawn
// proportional to the per-symbol estimates (exactly correct, the
// per-symbol languages are disjoint), and the branch inside a
// non-deterministic target set by canonical-first rejection — a draw
// from branch j is kept only if no earlier branch accepts its suffix,
// which makes the draw uniform over the union.
func (s *sampler) sampleFrom(q, pos int, out []int) bool {
	e := s.e
	rem := len(out) - pos
	if rem == 0 {
		return e.finals.Has(q)
	}
	entries := e.ix.states[q]
	w := s.getW(len(entries))
	for i := range entries {
		w[i] = e.unionLookup(&entries[i], rem-1)
	}
	i := s.pick(w)
	s.putW(w)
	if i < 0 {
		return false
	}
	en := &entries[i]
	out[pos] = en.sym
	targets := en.targets
	if len(targets) == 1 {
		return s.sampleFrom(targets[0], pos+1, out)
	}
	tw := s.getW(len(targets))
	for j, t := range targets {
		tw[j] = e.wordLookup(t, rem-1)
	}
	maxRetry := e.maxRetry
	if maxRetry <= 0 {
		maxRetry = 32 * len(targets)
	}
	have := false
	for r := 0; r < maxRetry; r++ {
		j := s.pick(tw)
		if j < 0 {
			break
		}
		if !s.sampleFrom(targets[j], pos+1, out) {
			continue
		}
		have = true
		if j == 0 || !s.acceptsSet(targets[:j], out[pos+1:]) {
			s.putW(tw)
			return true
		}
		s.rejections++
	}
	s.putW(tw)
	// Retry budget exhausted: keep the latest complete draw (slightly
	// biased towards multiply-covered words; the budget makes this path
	// rare).
	return have
}

// acceptsSet reports whether any state in the set accepts the word, by
// subset simulation over the dense index: two pooled bitsets hold the
// current and next state sets, and the final check is one word-wise
// intersection with the finals bitset.
func (s *sampler) acceptsSet(states []int, word []int) bool {
	s.acceptChecks++
	ix := s.e.ix
	cur, next := s.cur, s.next
	cur.Clear()
	for _, q := range states {
		cur.Add(q)
	}
	for _, a := range word {
		next.Clear()
		any := false
		for w, bw := range cur {
			for bw != 0 {
				q := w*64 + bits.TrailingZeros64(bw)
				bw &= bw - 1
				for _, r := range ix.targetsOf(q, a) {
					next.Add(r)
					any = true
				}
			}
		}
		cur, next = next, cur
		if !any {
			return false
		}
	}
	return cur.Intersects(s.e.finals)
}

// sampleTop draws a near-uniform word of length n from L_n(M) into a
// fresh slice, resolving the union over initial states by the same
// canonical-first rejection as branch sampling. Returns nil if the
// language is (estimated) empty.
func (s *sampler) sampleTop(n int) []int {
	e := s.e
	targets := e.m.initial
	if len(targets) == 0 {
		return nil
	}
	out := make([]int, n)
	if len(targets) == 1 {
		if !s.sampleFrom(targets[0], 0, out) {
			return nil
		}
		return out
	}
	tw := s.getW(len(targets))
	for j, t := range targets {
		tw[j] = e.wordLookup(t, n)
	}
	maxRetry := 32 * (len(targets) + 1)
	have := false
	for r := 0; r < maxRetry; r++ {
		j := s.pick(tw)
		if j < 0 {
			break
		}
		if !s.sampleFrom(targets[j], 0, out) {
			continue
		}
		have = true
		if j == 0 || !s.acceptsSet(targets[:j], out) {
			s.putW(tw)
			return out
		}
		s.rejections++
	}
	s.putW(tw)
	if !have {
		return nil
	}
	return out
}
