package nfa

import (
	"math/bits"

	"pqe/internal/bitset"
	"pqe/internal/efloat"
	"pqe/internal/splitmix"
)

// sampler is a sampling session over a frozen run: it draws words
// reading the memo tables and the plan's dense index but never writing
// them, so any number of samplers may run concurrently over one run.
// All scratch state (subset-simulation bitsets, word buffer, rejection
// counter) lives here; the scheduler binds one sampler per worker,
// rebinding it to the chunk's run at every chunk boundary (bind), so a
// sampler serves many trials within a call.
//
// The invariant the read-only lookups rely on: a sampler is only ever
// asked for (state, length) pairs whose estimates were computed — the
// estimation pass at a given length computes exactly the sub-estimates
// its sampling consults (all strictly smaller lengths), and the
// top-level APIs run topLevel before sampling.
type sampler struct {
	r          *wordRun
	rng        splitmix.Stream
	cur, next  bitset.Set // subset-simulation scratch for acceptsSet
	wordBuf    []int      // transient word for overlap testing
	rejections int
	// acceptChecks counts subset-simulation membership tests (one per
	// acceptsSet call), summed per call like rejections.
	acceptChecks int
}

func newSampler(pl *wordPlan) *sampler {
	return &sampler{
		cur:  bitset.New(pl.m.numStates),
		next: bitset.New(pl.m.numStates),
	}
}

// bind points the sampler at a run. Samplers are plan-scoped (the
// bitsets are sized to the automaton), so binding only swaps the memo
// tables it reads.
func (s *sampler) bind(r *wordRun) { s.r = r }

// pick returns an index with probability proportional to the weights,
// or -1 if all are zero. It is the reference implementation that
// pickRow's cached binary search must match draw-for-draw (pinned by
// TestPickRowMatchesPick); the hot paths all go through pickRow.
func (s *sampler) pick(weights []efloat.E) int {
	total := efloat.Sum(weights...)
	if total.IsZero() {
		return -1
	}
	target := total.MulFloat(s.rng.Float64())
	acc := efloat.Zero
	last := -1
	for i, w := range weights {
		if w.IsZero() {
			continue
		}
		last = i
		acc = acc.Add(w)
		if target.Less(acc) {
			return i
		}
	}
	return last
}

// pickRow is pick over a cached prefix row: one uniform variate, one
// binary search for the leftmost index whose prefix sum exceeds the
// target. Zero weights leave the prefix sum unchanged (efloat.Add
// returns the other operand exactly when one side is Zero), so the
// leftmost crossing index always carries nonzero weight and equals the
// index the reference scan stops at; the row's last field reproduces
// the scan's fallback when rounding pushes the target to the total.
func (s *sampler) pickRow(p *prefixRow) int {
	cum := p.cum
	n := len(cum)
	if n == 0 {
		return -1
	}
	total := cum[n-1]
	if total.IsZero() {
		return -1
	}
	target := total.MulFloat(s.rng.Float64())
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if target.Less(cum[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < n {
		return lo
	}
	return p.last
}

// countFresh draws the overlap samples lo ≤ i < hi for union branch j
// at length l and counts those landing outside all earlier branches.
// Each sample runs on its own PRNG derived from (trial seed, site, i),
// so the count is independent of how samples are partitioned across
// workers and chunks.
func (s *sampler) countFresh(targets []int, j, l int, site uint64, lo, hi int) int {
	if cap(s.wordBuf) < l {
		s.wordBuf = make([]int, l)
	}
	buf := s.wordBuf[:l]
	fresh := 0
	for i := lo; i < hi; i++ {
		s.rng = splitmix.Derive(s.r.seed, site, i)
		if !s.sampleFrom(targets[j], 0, buf) {
			continue
		}
		if !s.acceptsSet(targets[:j], buf) {
			fresh++
		}
	}
	return fresh
}

// sampleFrom fills out[pos:] with a near-uniform word from
// L(q, len(out)−pos), reporting false if the language is (estimated)
// empty. The word is built in place: the leading symbol is drawn
// proportional to the per-symbol estimates (exactly correct, the
// per-symbol languages are disjoint), and the branch inside a
// non-deterministic target set by canonical-first rejection — a draw
// from branch j is kept only if no earlier branch accepts its suffix,
// which makes the draw uniform over the union.
func (s *sampler) sampleFrom(q, pos int, out []int) bool {
	r := s.r
	rem := len(out) - pos
	if rem == 0 {
		return r.finals.Has(q)
	}
	entries := r.pl.ix.states[q]
	i := s.pickRow(r.entryRow(q, rem))
	if i < 0 {
		return false
	}
	en := &entries[i]
	out[pos] = en.sym
	targets := en.targets
	if len(targets) == 1 {
		return s.sampleFrom(targets[0], pos+1, out)
	}
	trow := r.targetRow(en.set, rem-1)
	maxRetry := r.maxRetry
	if maxRetry <= 0 {
		maxRetry = 32 * len(targets)
	}
	have := false
	for retry := 0; retry < maxRetry; retry++ {
		j := s.pickRow(trow)
		if j < 0 {
			break
		}
		if !s.sampleFrom(targets[j], pos+1, out) {
			continue
		}
		have = true
		if j == 0 || !s.acceptsSet(targets[:j], out[pos+1:]) {
			return true
		}
		s.rejections++
	}
	// Retry budget exhausted: keep the latest complete draw (slightly
	// biased towards multiply-covered words; the budget makes this path
	// rare).
	return have
}

// acceptsSet reports whether any state in the set accepts the word, by
// subset simulation over the dense index: two pooled bitsets hold the
// current and next state sets, and the final check is one word-wise
// intersection with the finals bitset.
func (s *sampler) acceptsSet(states []int, word []int) bool {
	s.acceptChecks++
	ix := s.r.pl.ix
	cur, next := s.cur, s.next
	cur.Clear()
	for _, q := range states {
		cur.Add(q)
	}
	for _, a := range word {
		next.Clear()
		any := false
		for w, bw := range cur {
			for bw != 0 {
				q := w*64 + bits.TrailingZeros64(bw)
				bw &= bw - 1
				for _, r := range ix.targetsOf(q, a) {
					next.Add(r)
					any = true
				}
			}
		}
		cur, next = next, cur
		if !any {
			return false
		}
	}
	return cur.Intersects(s.r.finals)
}

// sampleTop draws a near-uniform word of length n from L_n(M) into a
// fresh slice, resolving the union over initial states by the same
// canonical-first rejection as branch sampling (the interned top set's
// prefix row, when |I| > 1). Returns nil if the language is (estimated)
// empty.
func (s *sampler) sampleTop(n int) []int {
	r := s.r
	targets := r.pl.m.initial
	if len(targets) == 0 {
		return nil
	}
	out := make([]int, n)
	if len(targets) == 1 {
		if !s.sampleFrom(targets[0], 0, out) {
			return nil
		}
		return out
	}
	trow := r.targetRow(r.pl.ix.topSet, n)
	maxRetry := 32 * (len(targets) + 1)
	have := false
	for retry := 0; retry < maxRetry; retry++ {
		j := s.pickRow(trow)
		if j < 0 {
			break
		}
		if !s.sampleFrom(targets[j], 0, out) {
			continue
		}
		have = true
		if j == 0 || !s.acceptsSet(targets[:j], out) {
			return out
		}
		s.rejections++
	}
	if !have {
		return nil
	}
	return out
}
