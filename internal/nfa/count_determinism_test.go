package nfa

import (
	"math/rand"
	"testing"
)

// The determinism contract of the string engine: for a fixed seed the
// estimate is byte-identical at every Workers × Parallel setting,
// because every overlap sample draws from its own sub-RNG derived from
// (trial seed, site, sample index), independent of how samples are
// partitioned across goroutines.
func TestCountDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		m := randomNFA(rng)
		n := 2 + rng.Intn(6)
		base := Count(m, n, CountOptions{Epsilon: 0.15, Trials: 3, Seed: 7})
		for _, workers := range []int{1, 2, 8} {
			for _, parallel := range []bool{false, true} {
				got := Count(m, n, CountOptions{
					Epsilon: 0.15, Trials: 3, Seed: 7,
					Workers: workers, Parallel: parallel,
				})
				if got.Cmp(base) != 0 {
					t.Fatalf("trial %d: Workers=%d Parallel=%v gave %v, want %v",
						trial, workers, parallel, got, base)
				}
			}
		}
	}
}

// SampleWord must also be deterministic in the worker count: the
// top-level sampling stream is salted away from the overlap-sampling
// streams, so the drawn word depends only on the seed.
func TestSampleWordDeterministicAcrossWorkers(t *testing.T) {
	m := buildAB()
	base := SampleWord(m, 6, CountOptions{Epsilon: 0.2, Seed: 13})
	if base == nil {
		t.Fatal("nil sample from non-empty language")
	}
	for _, workers := range []int{2, 8} {
		got := SampleWord(m, 6, CountOptions{Epsilon: 0.2, Seed: 13, Workers: workers})
		if len(got) != len(base) {
			t.Fatalf("Workers=%d sample %v, want %v", workers, got, base)
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("Workers=%d sample %v, want %v", workers, got, base)
			}
		}
	}
}

// A Counter session must agree with one-shot Count at every length and
// be deterministic across worker counts too, since it shares the same
// estimators.
func TestCounterDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		m := randomNFA(rng)
		base := NewCounter(m, CountOptions{Epsilon: 0.15, Trials: 3, Seed: 21})
		par := NewCounter(m, CountOptions{Epsilon: 0.15, Trials: 3, Seed: 21, Workers: 8})
		for n := 1; n <= 6; n++ {
			a, b := base.Count(n), par.Count(n)
			if a.Cmp(b) != 0 {
				t.Fatalf("trial %d length %d: Workers=8 session gave %v, want %v", trial, n, b, a)
			}
		}
	}
}

// Counter sweeps must match one-shot Count calls with the same seed:
// the shared tables are a cache, not a different algorithm. Sweeping
// ascending or descending must not matter either — larger lengths
// compute smaller ones as subproblems.
func TestCounterMatchesCount(t *testing.T) {
	m := buildAB()
	up := NewCounter(m, CountOptions{Epsilon: 0.1, Trials: 3, Seed: 17})
	down := NewCounter(m, CountOptions{Epsilon: 0.1, Trials: 3, Seed: 17})
	var upVals, downVals [9]string
	for n := 1; n <= 8; n++ {
		upVals[n] = up.Count(n).String()
	}
	for n := 8; n >= 1; n-- {
		downVals[n] = down.Count(n).String()
	}
	for n := 1; n <= 8; n++ {
		oneShot := Count(m, n, CountOptions{Epsilon: 0.1, Trials: 3, Seed: 17})
		if upVals[n] != oneShot.String() {
			t.Errorf("length %d: session %s vs one-shot %s", n, upVals[n], oneShot)
		}
		if upVals[n] != downVals[n] {
			t.Errorf("length %d: ascending %s vs descending %s", n, upVals[n], downVals[n])
		}
	}
}

// Stats must report the work done and, for a deterministic engine, the
// same sampling effort at every worker count.
func TestCountStats(t *testing.T) {
	m := buildAB()
	var s1, s8 Stats
	Count(m, 8, CountOptions{Epsilon: 0.1, Trials: 3, Seed: 42, Stats: &s1})
	Count(m, 8, CountOptions{Epsilon: 0.1, Trials: 3, Seed: 42, Workers: 8, Stats: &s8})
	if s1.WordKeys == 0 || s1.UnionSamples == 0 {
		t.Fatalf("stats not recorded: %+v", s1)
	}
	if s1.WordKeys != s8.WordKeys || s1.UnionKeys != s8.UnionKeys ||
		s1.UnionSamples != s8.UnionSamples || s1.Rejections != s8.Rejections {
		t.Errorf("worker count changed effort counters: %+v vs %+v", s1, s8)
	}
	if s1.WallTime <= 0 {
		t.Errorf("WallTime not recorded: %v", s1.WallTime)
	}
}

// Counting must be a function of the automaton's structure, not of its
// construction history or of map iteration order: two structurally
// identical automata (with independently built dense indexes) must give
// byte-identical estimates for the same seed. This pins the ordered
// interning of target sets in the index (set IDs seed the per-cell RNG
// streams).
func TestCountDeterministicAcrossRebuilds(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng1 := rand.New(rand.NewSource(int64(1000 + trial)))
		rng2 := rand.New(rand.NewSource(int64(1000 + trial)))
		m1, m2 := randomNFA(rng1), randomNFA(rng2)
		n := 2 + trial%5
		opts := CountOptions{Epsilon: 0.15, Trials: 3, Seed: 21}
		a, b := Count(m1, n, opts), Count(m2, n, opts)
		if a.Cmp(b) != 0 {
			t.Fatalf("trial %d: identical automata counted differently: %v vs %v", trial, a, b)
		}
	}
}
