package nfa

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildAB returns an NFA over {a,b} accepting words with at least one a,
// deliberately ambiguous: both a self-looping "seen nothing" state that
// guesses and a direct path accept the same words.
func buildAB() *NFA {
	m := New()
	q0 := m.AddState()
	q1 := m.AddState()
	m.AddTransition(q0, "a", q0)
	m.AddTransition(q0, "b", q0)
	m.AddTransition(q0, "a", q1)
	m.AddTransition(q1, "a", q1)
	m.AddTransition(q1, "b", q1)
	m.SetInitial(q0)
	m.SetFinal(q1)
	return m
}

func TestAccepts(t *testing.T) {
	m := buildAB()
	a, _ := m.Symbols.Lookup("a")
	b, _ := m.Symbols.Lookup("b")
	cases := []struct {
		word []int
		want bool
	}{
		{[]int{}, false},
		{[]int{b}, false},
		{[]int{a}, true},
		{[]int{b, b, b}, false},
		{[]int{b, a, b}, true},
	}
	for _, c := range cases {
		if got := m.Accepts(c.word); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", m.WordString(c.word), got, c.want)
		}
	}
}

func TestExactCountWordsWithAtLeastOneA(t *testing.T) {
	m := buildAB()
	// Words of length n over {a,b} with ≥1 a: 2^n − 1.
	for n := 0; n <= 10; n++ {
		want := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(n)), big.NewInt(1))
		if got := ExactCount(m, n); got.Cmp(want) != 0 {
			t.Errorf("ExactCount(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestEnumerateWordsMatchesExactCount(t *testing.T) {
	m := buildAB()
	for n := 0; n <= 6; n++ {
		seen := make(map[string]bool)
		EnumerateWords(m, n, func(w []int) bool {
			k := m.WordString(w)
			if seen[k] {
				t.Errorf("duplicate word %s at length %d", k, n)
			}
			seen[k] = true
			if !m.Accepts(w) {
				t.Errorf("enumerated word %s not accepted", k)
			}
			return true
		})
		if got := ExactCount(m, n); got.Cmp(big.NewInt(int64(len(seen)))) != 0 {
			t.Errorf("length %d: enumerated %d, ExactCount %v", n, len(seen), got)
		}
	}
}

func TestAddTransitionDedup(t *testing.T) {
	m := New()
	q := m.AddState()
	r := m.AddState()
	m.AddTransition(q, "a", r)
	m.AddTransition(q, "a", r)
	if got := m.NumTransitions(); got != 1 {
		t.Errorf("NumTransitions = %d", got)
	}
	a, _ := m.Symbols.Lookup("a")
	if got := m.Targets(q, a); len(got) != 1 || got[0] != r {
		t.Errorf("Targets = %v", got)
	}
}

func TestStateBoundsPanic(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range state did not panic")
		}
	}()
	m.AddTransition(0, "a", 0)
}

// randomNFA builds a random NFA with heavy ambiguity.
func randomNFA(rng *rand.Rand) *NFA {
	m := New()
	numStates := 2 + rng.Intn(4)
	syms := []string{"a", "b", "c"}[:1+rng.Intn(3)]
	for i := 0; i < numStates; i++ {
		m.AddState()
	}
	numTrans := 1 + rng.Intn(3*numStates)
	for i := 0; i < numTrans; i++ {
		m.AddTransition(rng.Intn(numStates), syms[rng.Intn(len(syms))], rng.Intn(numStates))
	}
	m.SetInitial(rng.Intn(numStates))
	if rng.Intn(2) == 0 {
		m.SetInitial(rng.Intn(numStates))
	}
	m.SetFinal(rng.Intn(numStates))
	if rng.Intn(2) == 0 {
		m.SetFinal(rng.Intn(numStates))
	}
	return m
}

// bruteCount enumerates all words of length n over the alphabet and
// counts acceptance (independent of ExactCount's subset DP).
func bruteCount(m *NFA, n int) int64 {
	numSyms := m.Symbols.Size()
	word := make([]int, n)
	var count int64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if m.Accepts(word) {
				count++
			}
			return
		}
		for a := 0; a < numSyms; a++ {
			word[i] = a
			rec(i + 1)
		}
	}
	rec(0)
	return count
}

// Property: ExactCount agrees with brute-force word enumeration.
func TestQuickExactCountAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomNFA(rng)
		n := rng.Intn(6)
		return ExactCount(m, n).Int64() == bruteCount(m, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCountApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opts := CountOptions{Epsilon: 0.15, Trials: 7, Seed: 42}
	for trial := 0; trial < 40; trial++ {
		m := randomNFA(rng)
		n := 1 + rng.Intn(7)
		exact := ExactCount(m, n)
		got := Count(m, n, opts)
		if exact.Sign() == 0 {
			if !got.IsZero() {
				t.Errorf("trial %d: exact 0 but estimate %v", trial, got)
			}
			continue
		}
		ratio := got.Float() / float64(exact.Int64())
		if ratio < 0.7 || ratio > 1.3 {
			t.Errorf("trial %d: estimate %v vs exact %v (ratio %.3f)", trial, got, exact, ratio)
		}
	}
}

func TestCountAmbiguousNotRunCount(t *testing.T) {
	// buildAB accepts each word via up to n runs; the count must be the
	// number of distinct words, not runs.
	m := buildAB()
	n := 8
	exact := ExactCount(m, n) // 255
	got := Count(m, n, CountOptions{Epsilon: 0.1, Trials: 7, Seed: 3})
	ratio := got.Float() / float64(exact.Int64())
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("estimate %v vs exact %v (ratio %.3f)", got, exact, ratio)
	}
}

func TestCountZeroLanguage(t *testing.T) {
	m := New()
	q := m.AddState()
	m.SetInitial(q)
	// No finals: language empty.
	if got := Count(m, 3, CountOptions{Seed: 1}); !got.IsZero() {
		t.Errorf("Count of empty language = %v", got)
	}
}

func TestSampleWordInLanguage(t *testing.T) {
	m := buildAB()
	opts := CountOptions{Epsilon: 0.2, Seed: 9}
	for i := 0; i < 50; i++ {
		w := SampleWord(m, 5, opts)
		if w == nil {
			t.Fatal("nil sample from non-empty language")
		}
		if len(w) != 5 {
			t.Fatalf("sample length %d", len(w))
		}
		if !m.Accepts(w) {
			t.Errorf("sampled word %s not in language", m.WordString(w))
		}
	}
}

func TestSampleWordApproxUniform(t *testing.T) {
	// Language: words of length 3 over {a,b} with ≥1 a → 7 words.
	m := buildAB()
	opts := CountOptions{Epsilon: 0.1, Samples: 200, Seed: 11}
	counts := make(map[string]int)
	draws := 1400
	for i := 0; i < draws; i++ {
		opts.Seed = int64(i + 1)
		w := SampleWord(m, 3, opts)
		if w == nil {
			t.Fatal("nil sample")
		}
		counts[m.WordString(w)]++
	}
	if len(counts) != 7 {
		t.Fatalf("support size %d, want 7: %v", len(counts), counts)
	}
	for w, c := range counts {
		frac := float64(c) / float64(draws)
		if frac < 0.05 || frac > 0.30 {
			t.Errorf("word %s drawn with frequency %.3f, want ≈ 1/7", w, frac)
		}
	}
}

func TestSampleWordEmpty(t *testing.T) {
	m := New()
	q := m.AddState()
	m.SetInitial(q)
	if w := SampleWord(m, 2, CountOptions{Seed: 1}); w != nil {
		t.Errorf("sample from empty language = %v", w)
	}
}

// Property: the FPRAS is within a generous envelope of the exact count
// across random automata (seeded, hence deterministic).
func TestQuickCountEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping sampling-heavy property test in -short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomNFA(rng)
		n := 1 + rng.Intn(6)
		exact := ExactCount(m, n)
		got := Count(m, n, CountOptions{Epsilon: 0.2, Trials: 5, Seed: seed + 1})
		if exact.Sign() == 0 {
			return got.IsZero()
		}
		ratio := got.Float() / float64(exact.Int64())
		return ratio > 0.55 && ratio < 1.45
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCountParallelMatchesSequential(t *testing.T) {
	m := buildAB()
	seq := Count(m, 8, CountOptions{Epsilon: 0.1, Trials: 5, Seed: 42})
	par := Count(m, 8, CountOptions{Epsilon: 0.1, Trials: 5, Seed: 42, Parallel: true})
	if seq.Cmp(par) != 0 {
		t.Errorf("parallel %v != sequential %v with the same seed", par, seq)
	}
}

func TestTrimPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		m := randomNFA(rng)
		trimmed := m.Trim()
		for n := 0; n <= 5; n++ {
			got, want := ExactCount(trimmed, n), ExactCount(m, n)
			if got.Cmp(want) != 0 {
				t.Fatalf("trial %d size %d: trimmed %v != %v", trial, n, got, want)
			}
		}
		if trimmed.NumStates() > m.NumStates() {
			t.Errorf("Trim grew the automaton")
		}
	}
}

func TestTrimDropsDeadStates(t *testing.T) {
	m := New()
	q := m.AddState()
	dead := m.AddState() // unreachable
	sink := m.AddState() // reachable but not co-reachable
	f := m.AddState()
	m.AddTransition(q, "a", f)
	m.AddTransition(q, "a", sink)
	m.AddTransition(dead, "a", f)
	m.SetInitial(q)
	m.SetFinal(f)
	trimmed := m.Trim()
	if trimmed.NumStates() != 2 {
		t.Errorf("trimmed to %d states, want 2", trimmed.NumStates())
	}
}
