package nfa

import (
	"sync/atomic"

	"pqe/internal/efloat"
)

// Prefix-sum weight rows for the word samplers, mirroring
// internal/count/prefix.go: every draw at a given (state, remaining
// length) or (target set, length) cell recomputes the identical weight
// vector and running sums, so the run caches the prefix sums per cell
// and pick becomes one binary search over a frozen row. Bit-identity
// with the linear scan follows from efloat.Add returning its other
// operand exactly when one side is Zero (zero weights leave the prefix
// sum unchanged) and from monotonicity of adding non-negative values;
// the sampler draws the same single uniform variate either way.

// prefixRow is one frozen weight row: cum[i] is the sum of weights
// 0..i, and last is the largest index with a nonzero weight (-1 when
// all weights are zero), the scan's fallback when rounding pushes the
// target past the end.
type prefixRow struct {
	cum  []efloat.E
	last int
}

// pfxArena bump-allocates prefix rows in reusable chunks, so a pooled
// run's next trial rebuilds its rows without heap allocation.
type pfxArena struct {
	rows  []prefixRow
	rused int
	vals  []efloat.E
	vused int
}

func (ar *pfxArena) reset() { ar.rused, ar.vused = 0, 0 }

func (ar *pfxArena) row(k int) *prefixRow {
	if ar.rused == len(ar.rows) {
		ar.rows = make([]prefixRow, max(64, 2*len(ar.rows)))
		ar.rused = 0
	}
	p := &ar.rows[ar.rused]
	ar.rused++
	if ar.vused+k > len(ar.vals) {
		ar.vals = make([]efloat.E, max(1024, 2*len(ar.vals)+k))
		ar.vused = 0
	}
	p.cum = ar.vals[ar.vused : ar.vused+k : ar.vused+k]
	ar.vused += k
	p.last = -1
	return p
}

// ensurePfx sizes the flat row-pointer arrays for lengths 0..n,
// carrying cached rows over on growth (a Counter sweeping upward keeps
// its cache). Called sequentially before estimation; the arrays are
// then read (and lazily filled) concurrently by samplers.
func (r *wordRun) ensurePfx(n int) {
	if n <= r.maxN {
		return
	}
	r.entryPfx = regrowPfx(r.entryPfx, r.pl.m.numStates, r.maxN, n)
	r.targetPfx = regrowPfx(r.targetPfx, len(r.pl.ix.sets), r.maxN, n)
	r.maxN = n
}

func regrowPfx(old []atomic.Pointer[prefixRow], rows, oldN, n int) []atomic.Pointer[prefixRow] {
	grown := make([]atomic.Pointer[prefixRow], rows*(n+1))
	for rr := 0; rr < rows && oldN >= 0; rr++ {
		for c := 0; c <= oldN; c++ {
			if p := old[rr*(oldN+1)+c].Load(); p != nil {
				grown[rr*(n+1)+c].Store(p)
			}
		}
	}
	return grown
}

// entryRow returns (building on first use) the prefix row over state
// q's symbol entries with rem letters remaining: weight i is
// unionLookup(entries[i], rem−1). Rows are built under the run mutex
// with double-checked publication; the atomic store/load pair orders
// the row contents for lock-free readers.
func (r *wordRun) entryRow(q, rem int) *prefixRow {
	slot := &r.entryPfx[q*(r.maxN+1)+rem]
	if p := slot.Load(); p != nil {
		return p
	}
	r.pfxMu.Lock()
	defer r.pfxMu.Unlock()
	if p := slot.Load(); p != nil {
		return p
	}
	entries := r.pl.ix.states[q]
	p := r.pfx.row(len(entries))
	acc := efloat.Zero
	for i := range entries {
		w := r.unionLookup(&entries[i], rem-1)
		if !w.IsZero() {
			p.last = i
		}
		acc = acc.Add(w)
		p.cum[i] = acc
	}
	slot.Store(p)
	return p
}

// targetRow returns the prefix row over an interned target set's states
// at suffix length l: weight j is wordLookup(sets[set][j], l). The
// interned slice aliases the automaton's own target slice (and
// m.initial for the top set), so the row order matches the sampler's
// canonical branch order exactly.
func (r *wordRun) targetRow(set, l int) *prefixRow {
	slot := &r.targetPfx[set*(r.maxN+1)+l]
	if p := slot.Load(); p != nil {
		return p
	}
	r.pfxMu.Lock()
	defer r.pfxMu.Unlock()
	if p := slot.Load(); p != nil {
		return p
	}
	targets := r.pl.ix.sets[set]
	p := r.pfx.row(len(targets))
	acc := efloat.Zero
	for j, t := range targets {
		w := r.wordLookup(t, l)
		if !w.IsZero() {
			p.last = j
		}
		acc = acc.Add(w)
		p.cum[j] = acc
	}
	slot.Store(p)
	return p
}
