package bitset

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := New(130)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if s.Count() != 7 {
		t.Errorf("Count = %d, want 7", s.Count())
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("bit 64 still set after Remove")
	}
	if !s.ContainsAll([]int{0, 63, 129}) {
		t.Error("ContainsAll false on set bits")
	}
	if s.ContainsAll([]int{0, 64}) {
		t.Error("ContainsAll true despite cleared bit")
	}
	s.Clear()
	if !s.Empty() {
		t.Error("set not empty after Clear")
	}
}

func TestHasBeyondCapacity(t *testing.T) {
	s := New(10)
	if s.Has(1000) {
		t.Error("bit beyond capacity reads as set")
	}
	var zero Set
	if zero.Has(0) {
		t.Error("zero-value set has bit 0")
	}
}

func TestMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200
	s := New(n)
	oracle := make(map[int]bool)
	for op := 0; op < 2000; op++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Add(i)
			oracle[i] = true
		case 1:
			s.Remove(i)
			delete(oracle, i)
		case 2:
			if s.Has(i) != oracle[i] {
				t.Fatalf("op %d: Has(%d) = %v, oracle %v", op, i, s.Has(i), oracle[i])
			}
		}
	}
	if s.Count() != len(oracle) {
		t.Errorf("Count = %d, oracle %d", s.Count(), len(oracle))
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(100)
	a := p.Get()
	a.Add(42)
	p.Put(a)
	b := p.Get()
	if !b.Empty() {
		t.Error("pooled set not cleared on Get")
	}
	if len(b) != len(New(100)) {
		t.Errorf("pooled set has %d words, want %d", len(b), len(New(100)))
	}
	c := p.Get() // pool empty again: fresh allocation
	if !c.Empty() {
		t.Error("fresh set not empty")
	}
}
