// Package bitset provides fixed-capacity bit sets over []uint64 words,
// plus a free-list pool of equally-sized sets. The counting hot path
// (acceptance checks over sampled forests) tests tuple membership
// millions of times per run; a bit set turns each test into a shift,
// a mask and a word load, and the pool removes the per-tree-node
// allocation that map[int]bool sets would cost.
package bitset

import "math/bits"

// Set is a bit set with capacity fixed at creation. The zero value is
// an empty set of capacity 0.
type Set []uint64

const wordBits = 64

// New returns a cleared set with capacity for n bits.
func New(n int) Set {
	return make(Set, (n+wordBits-1)/wordBits)
}

// Has reports whether bit i is set. Bits beyond the capacity read as
// unset.
func (s Set) Has(i int) bool {
	w := i / wordBits
	return w < len(s) && s[w]&(1<<(uint(i)%wordBits)) != 0
}

// Add sets bit i, which must be within capacity.
func (s Set) Add(i int) {
	s[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i, which must be within capacity.
func (s Set) Remove(i int) {
	s[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Clear unsets every bit.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for every set bit, in ascending order.
func (s Set) ForEach(f func(i int)) {
	for w, word := range s {
		for word != 0 {
			f(w*wordBits + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// Intersects reports whether the two sets share a set bit. Sets of
// different capacities compare over their common prefix.
func (s Set) Intersects(t Set) bool {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every listed bit is set.
func (s Set) ContainsAll(bits []int) bool {
	for _, i := range bits {
		if !s.Has(i) {
			return false
		}
	}
	return true
}

// Pool is a free list of sets of one shared bit capacity. It is not
// safe for concurrent use: callers that fan work out across goroutines
// should give each worker its own Pool.
type Pool struct {
	nbits int
	free  []Set
}

// NewPool returns a pool producing sets with capacity for n bits.
func NewPool(n int) *Pool {
	return &Pool{nbits: n}
}

// Get returns a cleared set from the pool, allocating if empty.
func (p *Pool) Get() Set {
	if k := len(p.free); k > 0 {
		s := p.free[k-1]
		p.free = p.free[:k-1]
		s.Clear()
		return s
	}
	return New(p.nbits)
}

// Put returns a set to the pool. The set must have come from Get (or
// share the pool's capacity).
func (p *Pool) Put(s Set) {
	p.free = append(p.free, s)
}
