// Package shard distributes the FPRAS trial schedule across worker
// processes. A coordinator (Pool) partitions the fixed trial range —
// and, for anytime calls, the deterministic seqstop batch boundaries —
// into contiguous sub-ranges, dispatches them to workers (Server) over
// a zero-dependency length-prefixed JSON protocol on TCP, and merges
// the per-trial estimates through the same upper-median path the
// engines use locally.
//
// Determinism contract: every trial's PRNG streams derive from
// (seed, site, index) — never from the schedule, the partition, or the
// worker that ran it (see internal/splitmix) — and estimates travel as
// exact (mantissa bits, exponent) pairs. The merged estimate is
// therefore byte-for-byte equal to the single-process run at any
// worker count, including after a mid-call range reassignment.
//
// Wire format: each message is one frame — a 4-byte big-endian length
// followed by that many bytes of JSON. Requests carry an op ("hello"
// to handshake, "session" to install an instance, "count" to execute a
// trial range); responses carry ok/err plus the estimates as parallel
// mantissa-bits and exponent arrays. Sessions are keyed by a content
// hash of (query, db, max width), so a worker that evicted a session
// (LRU) or restarted just reports errUnknownSession and the
// coordinator re-installs it and retries.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"pqe/internal/core"
)

// ProtocolVersion is bumped on any incompatible wire change; the hello
// handshake rejects mismatched peers.
const ProtocolVersion = 1

// maxFrame bounds one frame's payload. Instances ship as text in
// session frames, so the bound is generous; anything larger is a
// protocol error, not a bigger allocation.
const maxFrame = 64 << 20

// errUnknownSession is the sentinel a worker reports when a count
// request names a session it does not hold (evicted or restarted). The
// coordinator reacts by re-installing the session and retrying.
const errUnknownSession = "unknown session"

// request is one coordinator→worker message.
type request struct {
	Op      string `json:"op"`                // "hello" | "session" | "count"
	Version int    `json:"version,omitempty"` // hello
	Session string `json:"session,omitempty"` // session, count: spec key

	// session: the instance, in the public text formats.
	Query    string `json:"query,omitempty"`
	DB       string `json:"db,omitempty"`
	MaxWidth int    `json:"max_width,omitempty"`

	// count: the resolved schedule and the trial range to execute.
	Mode    string  `json:"mode,omitempty"`
	N       int     `json:"n,omitempty"`
	States  int     `json:"states,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	Trials  int     `json:"trials,omitempty"`
	Samples int     `json:"samples,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	Lo      int     `json:"lo"`
	Hi      int     `json:"hi"`
}

// response is one worker→coordinator message. Estimates travel as
// parallel arrays of IEEE-754 mantissa bits and binary exponents
// (efloat.E.Bits), because JSON float text does not round-trip bits.
type response struct {
	OK      bool     `json:"ok"`
	Err     string   `json:"err,omitempty"`
	Version int      `json:"version,omitempty"`
	Mant    []uint64 `json:"mant,omitempty"`
	Exp     []int64  `json:"exp,omitempty"`
}

// spec converts a count request back to the core spec a worker hands
// its session.
func (r *request) spec() core.ShardSpec {
	return core.ShardSpec{
		Mode:    r.Mode,
		N:       r.N,
		States:  r.States,
		Epsilon: r.Epsilon,
		Trials:  r.Trials,
		Samples: r.Samples,
		Seed:    r.Seed,
	}
}

// SpecKey is the session cache key of a spec's instance: a content
// hash of (query, db, max width). Coordinator and workers derive it
// independently from the same fields.
func SpecKey(query, db string, maxWidth int) string {
	h := sha256.New()
	io.WriteString(h, query)
	h.Write([]byte{0})
	io.WriteString(h, db)
	h.Write([]byte{0})
	fmt.Fprintf(h, "%d", maxWidth)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// writeFrame sends one length-prefixed JSON message. A zero deadline
// means no deadline.
func writeFrame(conn net.Conn, v any, deadline time.Time) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("shard: frame of %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	if err := conn.SetWriteDeadline(deadline); err != nil {
		return err
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = conn.Write(buf)
	return err
}

// readFrame receives one length-prefixed JSON message into v. A zero
// deadline means no deadline.
func readFrame(conn net.Conn, v any, deadline time.Time) error {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("shard: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}
