package shard

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/obs"
	"pqe/internal/pdb"
)

// ServerConfig configures one worker process.
type ServerConfig struct {
	// MaxProcs bounds the engines' scheduler width per count request.
	// Default runtime.NumCPU().
	MaxProcs int
	// MaxSessions caps the LRU cache of estimator sessions (one per
	// distinct (query, db, max width)). Default 8. An evicted session
	// is transparently re-installed by the coordinator on next use.
	MaxSessions int
	// Obs, when non-nil, receives the worker-local engine telemetry
	// (count.trees_range / count.nfa_range spans, countnfta_*/countnfa_*
	// counters, per-trial convergence records) plus shard_worker_*
	// request counters.
	Obs *obs.Scope
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxProcs <= 0 {
		c.MaxProcs = runtime.NumCPU()
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	return c
}

// Server is one shard worker: it accepts coordinator connections and
// executes trial ranges on cached estimator sessions. Sessions are
// plan-cached core.Estimators, so repeated ranges of the same instance
// skip construction entirely — the same warm-session economics the
// in-process engines have.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	sessions map[string]*session
	order    []string // LRU order, least recent first
	closed   bool
}

// session is one cached (query, db, max width) estimator. The mutex
// serializes count requests — core.Estimator is not safe for
// concurrent use — while distinct sessions run concurrently.
type session struct {
	mu  sync.Mutex
	est *core.Estimator
}

// NewServer returns an unstarted worker; call Serve with a listener.
func NewServer(cfg ServerConfig) *Server {
	return &Server{
		cfg:      cfg.withDefaults(),
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[string]*session),
	}
}

// Serve accepts coordinator connections on l until Close (or a listener
// error). Each connection is served by its own goroutine, requests on a
// connection strictly in order.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("shard: server closed")
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops the accept loop and closes every live connection.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req request
		if err := readFrame(conn, &req, time.Time{}); err != nil {
			return // peer gone or broken frame; the coordinator redials
		}
		resp := s.handle(&req)
		if err := writeFrame(conn, resp, time.Time{}); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *request) response {
	switch req.Op {
	case "hello":
		if req.Version != ProtocolVersion {
			return response{Err: fmt.Sprintf("shard: protocol version %d, want %d", req.Version, ProtocolVersion)}
		}
		return response{OK: true, Version: ProtocolVersion}
	case "session":
		if err := s.installSession(req); err != nil {
			return response{Err: err.Error()}
		}
		return response{OK: true}
	case "count":
		return s.count(req)
	}
	return response{Err: fmt.Sprintf("shard: unknown op %q", req.Op)}
}

// installSession parses the instance and caches a fresh estimator under
// the request's session key, evicting the least-recently-used session
// beyond the cap.
func (s *Server) installSession(req *request) error {
	q, err := cq.Parse(req.Query)
	if err != nil {
		return fmt.Errorf("shard: session query: %w", err)
	}
	h, err := pdb.ParseString(req.DB)
	if err != nil {
		return fmt.Errorf("shard: session db: %w", err)
	}
	est := core.NewEstimator(q, h, core.Options{MaxWidth: req.MaxWidth, Obs: s.cfg.Obs})
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[req.Session]; ok {
		s.touchLocked(req.Session)
		s.sessions[req.Session] = &session{est: est}
		return nil
	}
	s.sessions[req.Session] = &session{est: est}
	s.order = append(s.order, req.Session)
	for len(s.sessions) > s.cfg.MaxSessions {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.sessions, evict)
	}
	s.cfg.Obs.Counter("shard_worker_sessions_installed_total").Inc()
	return nil
}

// touchLocked moves key to the most-recently-used end.
func (s *Server) touchLocked(key string) {
	for i, k := range s.order {
		if k == key {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), key)
			return
		}
	}
}

func (s *Server) count(req *request) response {
	s.mu.Lock()
	sess := s.sessions[req.Session]
	if sess != nil {
		s.touchLocked(req.Session)
	}
	s.mu.Unlock()
	if sess == nil {
		return response{Err: errUnknownSession}
	}
	sess.mu.Lock()
	results, err := sess.est.CountTrials(req.spec(), req.Lo, req.Hi, s.cfg.MaxProcs, s.cfg.Obs)
	sess.mu.Unlock()
	if err != nil {
		return response{Err: err.Error()}
	}
	s.cfg.Obs.Counter("shard_worker_ranges_total").Inc()
	s.cfg.Obs.Counter("shard_worker_trials_total").Add(int64(len(results)))
	resp := response{OK: true, Mant: make([]uint64, len(results)), Exp: make([]int64, len(results))}
	for i, e := range results {
		resp.Mant[i], resp.Exp[i] = e.Bits()
	}
	return resp
}
