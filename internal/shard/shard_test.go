package shard

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/efloat"
	"pqe/internal/obs"
	"pqe/internal/pdb"
	"pqe/internal/sched"
)

// startWorkers launches n in-process worker servers on loopback and
// returns their addresses plus a stop function.
func startWorkers(t *testing.T, n int, cfg ServerConfig) ([]string, func()) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		servers[i] = NewServer(cfg)
		go servers[i].Serve(l)
	}
	return addrs, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

const testDB = `R1(a,b) : 1/2
R1(a,c) : 1/3
R2(b,d) : 2/3
R2(c,d) : 1/2
R3(d,e) : 3/4
R3(d,f) : 1/2
`

func testInstance(t *testing.T) (*cq.Query, *pdb.Probabilistic) {
	t.Helper()
	q, err := cq.Parse("R1(x1,x2), R2(x2,x3), R3(x3,x4)")
	if err != nil {
		t.Fatal(err)
	}
	h, err := pdb.ParseString(testDB)
	if err != nil {
		t.Fatal(err)
	}
	return q, h
}

func TestFrameRoundTrip(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	want := request{Op: "count", Session: "k", Mode: core.ShardModePQE,
		N: 7, States: 42, Epsilon: 0.25, Trials: 5, Samples: 96, Seed: -3, Lo: 1, Hi: 4}
	go func() {
		if err := writeFrame(c1, &want, time.Time{}); err != nil {
			t.Error(err)
		}
	}()
	var got request
	if err := readFrame(c2, &got, time.Now().Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("frame round trip: got %+v, want %+v", got, want)
	}
}

func TestFrameTooLarge(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	err := writeFrame(c1, &request{DB: strings.Repeat("x", maxFrame)}, time.Time{})
	c1.Close()
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame accepted: %v", err)
	}
}

func TestSpecKeyDistinguishesInstances(t *testing.T) {
	a := SpecKey("R(x)", "R(a) : 1/2\n", 0)
	if a != SpecKey("R(x)", "R(a) : 1/2\n", 0) {
		t.Error("SpecKey is not deterministic")
	}
	for _, other := range []string{
		SpecKey("R(y)", "R(a) : 1/2\n", 0),
		SpecKey("R(x)", "R(b) : 1/2\n", 0),
		SpecKey("R(x)", "R(a) : 1/2\n", 2),
	} {
		if a == other {
			t.Error("SpecKey collides across distinct instances")
		}
	}
}

func TestPartitionCoversSchedule(t *testing.T) {
	for _, tc := range []struct{ lo, hi, k int }{{0, 5, 2}, {0, 5, 4}, {3, 5, 4}, {0, 8, 3}, {2, 2, 3}, {0, 1, 1}} {
		ranges := sched.Partition(tc.lo, tc.hi, tc.k)
		next := tc.lo
		for _, r := range ranges {
			if r.Lo != next || r.Hi <= r.Lo {
				t.Fatalf("Partition(%d,%d,%d) = %v: not contiguous", tc.lo, tc.hi, tc.k, ranges)
			}
			next = r.Hi
		}
		if next != tc.hi && tc.hi > tc.lo {
			t.Errorf("Partition(%d,%d,%d) = %v: does not cover", tc.lo, tc.hi, tc.k, ranges)
		}
	}
}

// TestBitIdentityAllModes runs the four counting modes sharded at
// worker counts 1, 2 and 4 and asserts every estimate equals the
// in-process run bit for bit.
func TestBitIdentityAllModes(t *testing.T) {
	q, h := testInstance(t)
	opts := core.Options{Epsilon: 0.3, Seed: 7}

	localPQE, err := core.NewEstimator(q, h, opts).PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	localPathPQE, err := core.NewEstimator(q, h, opts).PathPQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	localUR, err := core.NewUREstimator(q, h.DB(), opts).UREstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	localPath, err := core.NewUREstimator(q, h.DB(), opts).PathEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4} {
		addrs, stop := startWorkers(t, workers, ServerConfig{MaxProcs: 2})
		pool, err := Dial(addrs, PoolConfig{})
		if err != nil {
			stop()
			t.Fatal(err)
		}
		sopts := opts
		sopts.Shard = pool

		if got, err := core.NewEstimator(q, h, sopts).PQEEstimate(sopts); err != nil {
			t.Errorf("workers=%d: sharded PQE: %v", workers, err)
		} else if math.Float64bits(got) != math.Float64bits(localPQE) {
			t.Errorf("workers=%d: sharded PQE %v != local %v", workers, got, localPQE)
		}
		if got, err := core.NewEstimator(q, h, sopts).PathPQEEstimate(sopts); err != nil {
			t.Errorf("workers=%d: sharded PathPQE: %v", workers, err)
		} else if math.Float64bits(got) != math.Float64bits(localPathPQE) {
			t.Errorf("workers=%d: sharded PathPQE %v != local %v", workers, got, localPathPQE)
		}
		if got, err := core.NewUREstimator(q, h.DB(), sopts).UREstimate(sopts); err != nil {
			t.Errorf("workers=%d: sharded UR: %v", workers, err)
		} else if !bitsEqual(got, localUR) {
			t.Errorf("workers=%d: sharded UR %v != local %v", workers, got, localUR)
		}
		if got, err := core.NewUREstimator(q, h.DB(), sopts).PathEstimate(sopts); err != nil {
			t.Errorf("workers=%d: sharded Path: %v", workers, err)
		} else if !bitsEqual(got, localPath) {
			t.Errorf("workers=%d: sharded Path %v != local %v", workers, got, localPath)
		}

		st := pool.Stats()
		if st.RangesDispatched == 0 || st.TrialsDispatched == 0 {
			t.Errorf("workers=%d: no dispatches recorded: %+v", workers, st)
		}
		pool.Close()
		stop()
	}
}

func bitsEqual(a, b efloat.E) bool {
	am, ae := a.Bits()
	bm, be := b.Bits()
	return am == bm && ae == be
}

// TestBitIdentityAnytime pins the anytime path: seqstop batch
// boundaries live on the coordinator and the sharded run must execute
// the same trials and produce the same bits as the local anytime run.
func TestBitIdentityAnytime(t *testing.T) {
	q, h := testInstance(t)
	opts := core.Options{Epsilon: 0.3, Seed: 11, Delta: 0.25, Trials: 9}
	local, err := core.NewEstimator(q, h, opts).PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	addrs, stop := startWorkers(t, 2, ServerConfig{})
	defer stop()
	pool, err := Dial(addrs, PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sopts := opts
	sopts.Shard = pool
	got, err := core.NewEstimator(q, h, sopts).PQEEstimate(sopts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(local) {
		t.Errorf("sharded anytime %v != local %v", got, local)
	}
}

// TestSessionEvictionRetry forces the worker's session LRU to evict
// between calls: the coordinator must transparently re-install and the
// results must stay bit-identical.
func TestSessionEvictionRetry(t *testing.T) {
	addrs, stop := startWorkers(t, 1, ServerConfig{MaxSessions: 1})
	defer stop()
	pool, err := Dial(addrs, PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	q, h := testInstance(t)
	q2, err := cq.Parse("R1(x1,x2), R2(x2,x3)")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Epsilon: 0.3, Seed: 5}
	local1, err := core.NewEstimator(q, h, opts).PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	local2, err := core.NewEstimator(q2, h, opts).PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	sopts := opts
	sopts.Shard = pool
	// Alternate instances: each call evicts the other's session on the
	// 1-slot worker, so every second call exercises the unknown-session
	// re-install path.
	for round := 0; round < 3; round++ {
		got1, err := core.NewEstimator(q, h, sopts).PQEEstimate(sopts)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := core.NewEstimator(q2, h, sopts).PQEEstimate(sopts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got1) != math.Float64bits(local1) || math.Float64bits(got2) != math.Float64bits(local2) {
			t.Fatalf("round %d: eviction broke bit-identity", round)
		}
	}
}

// hangWorker is a fake worker that answers the handshake and session
// install but never answers a count — the timeout/straggler failure
// mode. Returns its address.
func hangWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					var req request
					if err := readFrame(conn, &req, time.Time{}); err != nil {
						return
					}
					switch req.Op {
					case "hello":
						writeFrame(conn, &response{OK: true, Version: ProtocolVersion}, time.Time{})
					case "session":
						writeFrame(conn, &response{OK: true}, time.Time{})
					default:
						select {} // hang forever; the coordinator must time out
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestTimeoutReassignsRange pins the robustness satellite: a worker
// that hangs mid-call times out, its range is reassigned to a live
// worker, and the merged estimate is still bit-identical (derivation
// depends only on trial index, not placement).
func TestTimeoutReassignsRange(t *testing.T) {
	q, h := testInstance(t)
	opts := core.Options{Epsilon: 0.3, Seed: 7}
	local, err := core.NewEstimator(q, h, opts).PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}

	liveAddrs, stop := startWorkers(t, 1, ServerConfig{})
	defer stop()
	addrs := []string{hangWorker(t), liveAddrs[0]}
	pool, err := Dial(addrs, PoolConfig{CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	sc := obs.NewScope(nil, obs.NewRegistry(), nil)
	sopts := opts
	sopts.Shard = pool
	sopts.Obs = sc
	got, err := core.NewEstimator(q, h, sopts).PQEEstimate(sopts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(local) {
		t.Errorf("reassigned run %v != local %v", got, local)
	}
	st := pool.Stats()
	if st.Reassigned == 0 {
		t.Errorf("no range was reassigned: %+v", st)
	}
	if st.WorkerFailures == 0 {
		t.Errorf("no worker failure recorded: %+v", st)
	}
	if v := sc.Registry().Counter("shard_reassigned_total").Value(); v == 0 {
		t.Error("shard_reassigned_total not incremented")
	}
}

// TestAllWorkersDead pins the failure mode: when no worker can serve a
// range the call errors instead of silently merging a partial
// schedule.
func TestAllWorkersDead(t *testing.T) {
	addrs, stop := startWorkers(t, 2, ServerConfig{})
	pool, err := Dial(addrs, PoolConfig{DialTimeout: 500 * time.Millisecond, CallTimeout: time.Second})
	if err != nil {
		stop()
		t.Fatal(err)
	}
	defer pool.Close()
	stop() // kill every worker before the call

	q, h := testInstance(t)
	opts := core.Options{Epsilon: 0.3, Seed: 7}
	sopts := opts
	sopts.Shard = pool
	if _, err := core.NewEstimator(q, h, sopts).PQEEstimate(sopts); err == nil {
		t.Fatal("call with all workers dead succeeded")
	}
}
