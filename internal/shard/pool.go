package shard

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pqe/internal/core"
	"pqe/internal/efloat"
	"pqe/internal/obs"
	"pqe/internal/sched"
	"pqe/internal/seqstop"
)

// PoolConfig configures a coordinator pool.
type PoolConfig struct {
	// DialTimeout bounds each TCP connect + hello handshake. Default 5s.
	DialTimeout time.Duration
	// CallTimeout bounds one request/response round trip (session
	// install or trial range). A worker that exceeds it is treated as
	// dead for the range, which is then reassigned. Default 2 minutes.
	CallTimeout time.Duration
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 2 * time.Minute
	}
	return c
}

// Stats is a snapshot of a pool's lifetime dispatch counters.
type Stats struct {
	RangesDispatched int64 // contiguous trial ranges sent to workers
	TrialsDispatched int64 // trials covered by those ranges
	Reassigned       int64 // ranges re-run on another worker after a failure
	WorkerFailures   int64 // failed range attempts (timeouts, dead conns, errors)
}

// Pool is the coordinator side of the shard protocol: a fixed set of
// worker addresses, one connection each (redialed lazily after a
// failure, so workers may leave and rejoin between batches). It
// implements core.Sharder.
type Pool struct {
	cfg     PoolConfig
	workers []*workerConn

	ranges     atomic.Int64
	trials     atomic.Int64
	reassigned atomic.Int64
	failures   atomic.Int64
}

// workerConn is one worker endpoint. The mutex serializes the
// connection's request/response round trips; sessions tracks which
// session keys this connection has installed (reset on redial).
type workerConn struct {
	addr     string
	mu       sync.Mutex
	conn     net.Conn
	sessions map[string]bool
}

// Dial connects to every worker address and performs the hello
// handshake. All workers must answer — a coordinator should fail fast
// at setup, not half-shard silently; failures after Dial are handled
// by reassignment.
func Dial(addrs []string, cfg PoolConfig) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("shard: no worker addresses")
	}
	p := &Pool{cfg: cfg.withDefaults()}
	for _, a := range addrs {
		p.workers = append(p.workers, &workerConn{addr: a})
	}
	for _, w := range p.workers {
		w.mu.Lock()
		err := w.ensure(p.cfg.DialTimeout, p.cfg.CallTimeout)
		w.mu.Unlock()
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("shard: worker %s: %w", w.addr, err)
		}
	}
	return p, nil
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Stats returns a snapshot of the dispatch counters.
func (p *Pool) Stats() Stats {
	return Stats{
		RangesDispatched: p.ranges.Load(),
		TrialsDispatched: p.trials.Load(),
		Reassigned:       p.reassigned.Load(),
		WorkerFailures:   p.failures.Load(),
	}
}

// Close drops every worker connection.
func (p *Pool) Close() {
	for _, w := range p.workers {
		w.mu.Lock()
		w.drop()
		w.mu.Unlock()
	}
}

// ensure dials and handshakes the connection if it is down. Caller
// holds w.mu.
func (w *workerConn) ensure(dialTimeout, callTimeout time.Duration) error {
	if w.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", w.addr, dialTimeout)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(callTimeout)
	if err := writeFrame(conn, &request{Op: "hello", Version: ProtocolVersion}, deadline); err != nil {
		conn.Close()
		return err
	}
	var resp response
	if err := readFrame(conn, &resp, deadline); err != nil {
		conn.Close()
		return err
	}
	if !resp.OK {
		conn.Close()
		return errors.New(resp.Err)
	}
	w.conn = conn
	w.sessions = make(map[string]bool)
	return nil
}

// drop closes the connection and forgets its installed sessions.
// Caller holds w.mu.
func (w *workerConn) drop() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
		w.sessions = nil
	}
}

// roundTrip sends one request and reads its response. Transport errors
// drop the connection (the next use redials); application errors come
// back in the response and leave the connection healthy. Caller holds
// w.mu.
func (w *workerConn) roundTrip(req *request, deadline time.Time) (response, error) {
	if err := writeFrame(w.conn, req, deadline); err != nil {
		w.drop()
		return response{}, err
	}
	var resp response
	if err := readFrame(w.conn, &resp, deadline); err != nil {
		w.drop()
		return response{}, err
	}
	return resp, nil
}

// install sends the spec's instance as a session. Caller holds w.mu
// with a live connection.
func (w *workerConn) install(spec core.ShardSpec, key string, deadline time.Time) error {
	resp, err := w.roundTrip(&request{
		Op:       "session",
		Session:  key,
		Query:    spec.Query,
		DB:       spec.DB,
		MaxWidth: spec.MaxWidth,
	}, deadline)
	if err != nil {
		return err
	}
	if !resp.OK {
		return errors.New(resp.Err)
	}
	w.sessions[key] = true
	return nil
}

// countRange executes trials [lo, hi) of the spec on this worker,
// installing the session on first use and transparently re-installing
// it once if the worker evicted it.
func (w *workerConn) countRange(spec core.ShardSpec, key string, lo, hi int, cfg PoolConfig) ([]efloat.E, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.ensure(cfg.DialTimeout, cfg.CallTimeout); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(cfg.CallTimeout)
	if !w.sessions[key] {
		if err := w.install(spec, key, deadline); err != nil {
			return nil, err
		}
	}
	req := &request{
		Op:      "count",
		Session: key,
		Mode:    spec.Mode,
		N:       spec.N,
		States:  spec.States,
		Epsilon: spec.Epsilon,
		Trials:  spec.Trials,
		Samples: spec.Samples,
		Seed:    spec.Seed,
		Lo:      lo,
		Hi:      hi,
	}
	resp, err := w.roundTrip(req, deadline)
	if err != nil {
		return nil, err
	}
	if !resp.OK && resp.Err == errUnknownSession {
		// The worker evicted (or restarted past) the session since we
		// installed it; re-install and retry once.
		delete(w.sessions, key)
		if err := w.install(spec, key, deadline); err != nil {
			return nil, err
		}
		if resp, err = w.roundTrip(req, deadline); err != nil {
			return nil, err
		}
	}
	if !resp.OK {
		return nil, errors.New(resp.Err)
	}
	if len(resp.Mant) != hi-lo || len(resp.Exp) != hi-lo {
		return nil, fmt.Errorf("shard: worker %s returned %d estimates for range [%d, %d)", w.addr, len(resp.Mant), lo, hi)
	}
	out := make([]efloat.E, hi-lo)
	for i := range out {
		e, err := efloat.FromBits(resp.Mant[i], resp.Exp[i])
		if err != nil {
			return nil, fmt.Errorf("shard: worker %s: %w", w.addr, err)
		}
		out[i] = e
	}
	return out, nil
}

// rangeResult is one dispatched range's outcome.
type rangeResult struct {
	r      sched.Range
	worker int
	vals   []efloat.E
	err    error
	done   time.Time
}

// CountSharded distributes one counting call across the pool and
// merges the result — the core.Sharder implementation.
//
// The schedule is exactly the local engine's: for fixed calls one
// batch of all Trials; for anytime calls the seqstop batches, with the
// stop certificate evaluated on the coordinator over the gathered
// per-trial log₂ estimates. Within a batch the trial range is cut into
// contiguous sub-ranges, one per worker; a failed range (timeout, dead
// connection, worker error) is reassigned whole to the next live
// worker, which is free because trial seeds derive from (seed, index),
// never from placement. The merged value is the upper median of the
// executed trials — bit-identical to the local run.
func (p *Pool) CountSharded(sc *obs.Scope, spec core.ShardSpec) (core.ShardResult, error) {
	key := SpecKey(spec.Query, spec.DB, spec.MaxWidth)
	sc, span := sc.Span("shard.count")
	defer span.End()
	if span != nil {
		span.SetAttr("mode", spec.Mode)
		span.SetAttr("trials", spec.Trials)
		span.SetAttr("workers", len(p.workers))
		span.SetAttr("epsilon", spec.Epsilon)
	}
	reg := sc.Registry()
	conv := sc.Convergence()
	callID := conv.NextCall()
	reg.Counter("shard_calls_total").Inc()

	values := make([]efloat.E, spec.Trials)
	log2s := make([]float64, spec.Trials)

	runBatch := func(base, next int) error {
		bspan := span.Start("batch")
		if bspan != nil {
			bspan.SetAttr("trial_lo", base)
			bspan.SetAttr("trial_hi", next)
		}
		defer bspan.End()
		ranges := sched.Partition(base, next, len(p.workers))
		results := make([]rangeResult, len(ranges))
		var wg sync.WaitGroup
		for i, r := range ranges {
			wg.Add(1)
			go func(i int, r sched.Range) {
				defer wg.Done()
				wi := i % len(p.workers)
				vals, err := p.workers[wi].countRange(spec, key, r.Lo, r.Hi, p.cfg)
				results[i] = rangeResult{r: r, worker: wi, vals: vals, err: err, done: time.Now()}
			}(i, r)
		}
		wg.Wait()
		p.ranges.Add(int64(len(ranges)))
		p.trials.Add(int64(next - base))
		reg.Counter("shard_ranges_dispatched_total").Add(int64(len(ranges)))
		reg.Counter("shard_trials_dispatched_total").Add(int64(next - base))
		// The merge wait is the straggler gap: how long the earliest
		// finisher idled before the batch's last range landed.
		var first, last time.Time
		for _, res := range results {
			if first.IsZero() || res.done.Before(first) {
				first = res.done
			}
			if res.done.After(last) {
				last = res.done
			}
		}
		if !first.IsZero() {
			reg.Histogram("shard_merge_wait_seconds").Observe(last.Sub(first).Seconds())
		}
		// Reassign failed ranges to live workers, whole. Derivation
		// depends only on (seed, site, trial index), so a reassigned
		// range reproduces the exact estimates its original worker would
		// have returned.
		for i := range results {
			res := &results[i]
			if res.err == nil {
				continue
			}
			p.failures.Add(1)
			reg.CounterVec("shard_worker_failures_total", "worker").With(p.workers[res.worker].addr).Inc()
			recovered := false
			for off := 1; off < len(p.workers); off++ {
				wi := (res.worker + off) % len(p.workers)
				vals, err := p.workers[wi].countRange(spec, key, res.r.Lo, res.r.Hi, p.cfg)
				if err == nil {
					res.vals, res.err, res.worker = vals, nil, wi
					recovered = true
					p.reassigned.Add(1)
					reg.Counter("shard_reassigned_total").Inc()
					break
				}
				p.failures.Add(1)
				reg.CounterVec("shard_worker_failures_total", "worker").With(p.workers[wi].addr).Inc()
			}
			if !recovered {
				return fmt.Errorf("shard: range [%d, %d) failed on every worker: %w", res.r.Lo, res.r.Hi, res.err)
			}
		}
		for _, res := range results {
			reg.CounterVec("shard_worker_trials_total", "worker").With(p.workers[res.worker].addr).Add(int64(res.r.Len()))
			for j, v := range res.vals {
				t := res.r.Lo + j
				values[t] = v
				log2s[t] = seqstop.Log2(v)
			}
		}
		if conv != nil {
			for t := base; t < next; t++ {
				conv.Record(obs.TrialRecord{
					Engine:       spec.Engine(),
					Call:         callID,
					Trial:        t,
					Trials:       spec.Trials,
					Epsilon:      spec.Epsilon,
					Log2Estimate: log2s[t],
				})
			}
		}
		return nil
	}

	executed := spec.Trials
	if spec.Anytime {
		// The same deterministic batch schedule the local engines run:
		// boundaries and the stop decision depend only on (ε, δ, Trials)
		// and the per-trial estimates — never on worker count or timing.
		sp := seqstop.New(spec.Epsilon, spec.Delta, spec.Trials, 0)
		executed = 0
		for executed < spec.Trials {
			next := sp.NextBatch(executed)
			if err := runBatch(executed, next); err != nil {
				return core.ShardResult{}, err
			}
			executed = next
			if sp.Stop(log2s[:executed]) {
				break
			}
		}
	} else if err := runBatch(0, spec.Trials); err != nil {
		return core.ShardResult{}, err
	}
	reg.Counter("shard_trials_saved_total").Add(int64(spec.Trials - executed))
	if span != nil {
		span.SetAttr("trials_executed", executed)
	}
	if executed == 0 {
		return core.ShardResult{}, errors.New("shard: no trials executed")
	}
	return core.ShardResult{Value: efloat.UpperMedian(values[:executed]), Executed: executed}, nil
}
