package flagcheck

import (
	"errors"
	"reflect"
	"testing"
)

func TestPositive(t *testing.T) {
	if err := Positive("trials", 1); err != nil {
		t.Errorf("Positive(1): %v", err)
	}
	for _, v := range []int{0, -1, -100} {
		err := Positive("trials", v)
		var fe *Error
		if !errors.As(err, &fe) {
			t.Fatalf("Positive(%d) = %v, want *Error", v, err)
		}
		if fe.Flag != "trials" {
			t.Errorf("Positive(%d).Flag = %q", v, fe.Flag)
		}
	}
}

func TestNonNegative(t *testing.T) {
	for _, v := range []int{0, 1, 64} {
		if err := NonNegative("maxprocs", v); err != nil {
			t.Errorf("NonNegative(%d): %v", v, err)
		}
	}
	var fe *Error
	if err := NonNegative("maxprocs", -2); !errors.As(err, &fe) {
		t.Fatalf("NonNegative(-2) = %v, want *Error", err)
	}
	if fe.Value != "-2" {
		t.Errorf("Value = %q, want \"-2\"", fe.Value)
	}
}

func TestNonEmptyList(t *testing.T) {
	got, err := NonEmptyList("workers-addr", "a:1, b:2 ,c:3")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a:1", "b:2", "c:3"}; !reflect.DeepEqual(got, want) {
		t.Errorf("NonEmptyList = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "a,,b", ",a", "a,"} {
		var fe *Error
		if _, err := NonEmptyList("workers-addr", bad); !errors.As(err, &fe) {
			t.Errorf("NonEmptyList(%q) = %v, want *Error", bad, err)
		}
	}
}

func TestErrorMessage(t *testing.T) {
	e := &Error{Flag: "trials", Value: "0", Reason: "must be a positive integer"}
	if got := e.Error(); got != `flag -trials: invalid value "0": must be a positive integer` {
		t.Errorf("Error() = %q", got)
	}
}
