// Package flagcheck validates command-line flag values with typed
// errors. The CLIs historically clamped out-of-range numeric flags to
// their defaults, which silently masked typos like -trials 0; callers
// now reject them up front and report which flag was wrong.
package flagcheck

import (
	"fmt"
	"strings"
)

// Error describes one rejected flag value.
type Error struct {
	Flag   string // flag name without the leading dash
	Value  string // the value as given
	Reason string // why it was rejected
}

func (e *Error) Error() string {
	return fmt.Sprintf("flag -%s: invalid value %q: %s", e.Flag, e.Value, e.Reason)
}

// Positive rejects values < 1.
func Positive(name string, v int) error {
	if v < 1 {
		return &Error{Flag: name, Value: fmt.Sprint(v), Reason: "must be a positive integer"}
	}
	return nil
}

// NonNegative rejects values < 0 (zero commonly means "use default").
func NonNegative(name string, v int) error {
	if v < 0 {
		return &Error{Flag: name, Value: fmt.Sprint(v), Reason: "must be zero or a positive integer"}
	}
	return nil
}

// NonEmptyList splits a comma-separated flag value, trims whitespace,
// and rejects empty entries — "a,,b" is a typo, not two addresses.
func NonEmptyList(name, v string) ([]string, error) {
	parts := strings.Split(v, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, &Error{Flag: name, Value: v, Reason: "entries must be non-empty"}
		}
		out = append(out, p)
	}
	return out, nil
}
