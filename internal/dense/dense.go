// Package dense provides the two-dimensional memo table shared by the
// approximate counting engines (internal/count for trees, internal/nfa
// for strings): rows are states, union slots or interned tuple/set IDs
// — small dense integer ranges fixed at estimator construction — and
// the size axis grows on demand up to the largest size queried.
// Compared to the map-based tables it replaced, a lookup is two slice
// indexings with no hashing, and rows stay contiguous for the size
// sweeps the DP performs.
package dense

import "pqe/internal/efloat"

// Table is a dense memo table indexed by (row, size).
//
// done tracks computed cells separately because efloat.Zero is a
// legitimate memoized value.
type Table struct {
	vals [][]efloat.E
	done [][]bool
	keys int // number of computed cells, for Stats
}

// NewTable returns a table with the given fixed number of rows.
func NewTable(rows int) Table {
	return Table{
		vals: make([][]efloat.E, rows),
		done: make([][]bool, rows),
	}
}

// Get returns the memoized value at (r, c) and whether it was computed.
func (t *Table) Get(r, c int) (efloat.E, bool) {
	row := t.done[r]
	if c >= len(row) || !row[c] {
		return efloat.Zero, false
	}
	return t.vals[r][c], true
}

// Put memoizes v at (r, c), growing the row as needed.
func (t *Table) Put(r, c int, v efloat.E) {
	if c >= len(t.done[r]) {
		t.done[r] = append(t.done[r], make([]bool, c+1-len(t.done[r]))...)
		t.vals[r] = append(t.vals[r], make([]efloat.E, c+1-len(t.vals[r]))...)
	}
	if !t.done[r][c] {
		t.done[r][c] = true
		t.keys++
	}
	t.vals[r][c] = v
}

// Keys returns the number of computed cells.
func (t *Table) Keys() int { return t.keys }

// Reset clears every computed cell while keeping the row capacity, so a
// pooled table's next user allocates nothing on the sizes it revisits.
// Values are left in place — done gates every read.
func (t *Table) Reset() {
	for r := range t.done {
		row := t.done[r]
		for c := range row {
			row[c] = false
		}
	}
	t.keys = 0
}
