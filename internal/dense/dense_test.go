package dense

import (
	"testing"

	"pqe/internal/efloat"
)

// The done bitmap is what makes efloat.Zero a legitimate memoized
// value: a cell holding Zero must read back as computed, and an
// untouched cell must not — even though both hold the same value.
func TestZeroIsAComputedValue(t *testing.T) {
	tab := NewTable(2)
	if _, ok := tab.Get(0, 0); ok {
		t.Fatal("fresh cell reported as computed")
	}
	tab.Put(0, 0, efloat.Zero)
	v, ok := tab.Get(0, 0)
	if !ok {
		t.Fatal("memoized Zero reported as not computed")
	}
	if !v.IsZero() {
		t.Errorf("memoized Zero read back as %v", v)
	}
	// The sibling cell in the same row stays uncomputed.
	if _, ok := tab.Get(0, 1); ok {
		t.Error("neighbouring cell reported as computed")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	tab := NewTable(3)
	want := map[[2]int]efloat.E{
		{0, 0}: efloat.FromInt(7),
		{1, 4}: efloat.Pow2(100),
		{2, 2}: efloat.One,
	}
	for k, v := range want {
		tab.Put(k[0], k[1], v)
	}
	for k, v := range want {
		got, ok := tab.Get(k[0], k[1])
		if !ok {
			t.Errorf("cell %v not computed", k)
			continue
		}
		if got.Cmp(v) != 0 {
			t.Errorf("cell %v = %v, want %v", k, got, v)
		}
	}
}

// Rows grow on demand along the size axis; reads beyond the grown
// extent answer "not computed" instead of panicking.
func TestRowGrowth(t *testing.T) {
	tab := NewTable(1)
	tab.Put(0, 10, efloat.One)
	if _, ok := tab.Get(0, 9); ok {
		t.Error("cell below the grown extent reported as computed")
	}
	if _, ok := tab.Get(0, 11); ok {
		t.Error("cell beyond the grown extent reported as computed")
	}
	if v, ok := tab.Get(0, 10); !ok || v.Cmp(efloat.One) != 0 {
		t.Errorf("grown cell = %v, %v", v, ok)
	}
	// Filling the hole left by the growth works.
	tab.Put(0, 5, efloat.FromInt(5))
	if v, ok := tab.Get(0, 5); !ok || v.Cmp(efloat.FromInt(5)) != 0 {
		t.Errorf("backfilled cell = %v, %v", v, ok)
	}
}

// Keys counts distinct computed cells; overwriting an existing cell
// must not double-count (the Stats counters depend on this).
func TestKeysCountsDistinctCells(t *testing.T) {
	tab := NewTable(2)
	if tab.Keys() != 0 {
		t.Fatalf("fresh table Keys = %d", tab.Keys())
	}
	tab.Put(0, 0, efloat.One)
	tab.Put(0, 1, efloat.One)
	tab.Put(1, 0, efloat.One)
	if tab.Keys() != 3 {
		t.Errorf("Keys = %d, want 3", tab.Keys())
	}
	tab.Put(0, 1, efloat.FromInt(9)) // overwrite
	if tab.Keys() != 3 {
		t.Errorf("Keys after overwrite = %d, want 3", tab.Keys())
	}
	if v, _ := tab.Get(0, 1); v.Cmp(efloat.FromInt(9)) != 0 {
		t.Errorf("overwrite did not take: %v", v)
	}
}

// Rows are independent slots: writes at matching columns of different
// rows never alias.
func TestRowsAreIndependent(t *testing.T) {
	tab := NewTable(4)
	for r := 0; r < 4; r++ {
		tab.Put(r, 3, efloat.FromInt(int64(r+1)))
	}
	for r := 0; r < 4; r++ {
		v, ok := tab.Get(r, 3)
		if !ok || v.Cmp(efloat.FromInt(int64(r+1))) != 0 {
			t.Errorf("row %d cell = %v, %v", r, v, ok)
		}
	}
}

// Reset must forget every computed cell while keeping the grown row
// capacity usable: the pooled runs of the counting engines rely on a
// reset table answering "not computed" everywhere.
func TestReset(t *testing.T) {
	tab := NewTable(3)
	tab.Put(0, 0, efloat.Zero)
	tab.Put(1, 7, efloat.FromInt(9))
	tab.Put(2, 3, efloat.One)
	if tab.Keys() != 3 {
		t.Fatalf("Keys = %d before reset, want 3", tab.Keys())
	}
	tab.Reset()
	if tab.Keys() != 0 {
		t.Errorf("Keys = %d after reset, want 0", tab.Keys())
	}
	for _, c := range [][2]int{{0, 0}, {1, 7}, {2, 3}} {
		if _, ok := tab.Get(c[0], c[1]); ok {
			t.Errorf("cell %v still computed after reset", c)
		}
	}
	// The table is fully reusable after a reset.
	tab.Put(1, 7, efloat.FromInt(4))
	if v, ok := tab.Get(1, 7); !ok || v.Cmp(efloat.FromInt(4)) != 0 {
		t.Errorf("cell (1,7) after reset+put = %v, %v", v, ok)
	}
	if tab.Keys() != 1 {
		t.Errorf("Keys = %d after reuse, want 1", tab.Keys())
	}
}
