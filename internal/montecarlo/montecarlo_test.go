package montecarlo

import (
	"math"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/hypertree"
	"pqe/internal/pdb"
)

func TestEstimateConverges(t *testing.T) {
	q := cq.PathQuery("R", 2)
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("R2", "b", "d"), pdb.NewProb(1, 2))
	want, _ := exact.MustPQE(q, h).Float64() // = 1/2 · 3/4 = 0.375
	got := Estimate(q, h, Options{Samples: 40000, Seed: 7})
	if math.Abs(got-want) > 0.01 {
		t.Errorf("MC estimate %v, want ≈ %v", got, want)
	}
}

func TestEstimateWithDecomposition(t *testing.T) {
	q := cq.PathQuery("R", 2)
	dec, err := hypertree.Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.NewProb(3, 4))
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.NewProb(2, 3))
	want, _ := exact.MustPQE(q, h).Float64()
	got := Estimate(q, h, Options{Samples: 40000, Seed: 3, Dec: dec})
	if math.Abs(got-want) > 0.01 {
		t.Errorf("MC estimate %v, want ≈ %v", got, want)
	}
}

func TestEstimateSmallProbabilityDegrades(t *testing.T) {
	// With Pr(Q) ≈ 1e-4 and only 1000 samples, the MC estimate is
	// usually 0 — an infinite relative error. This is the additive-
	// versus-relative guarantee gap E11 demonstrates.
	q := cq.PathQuery("R", 2)
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.NewProb(1, 100))
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.NewProb(1, 100))
	got := Estimate(q, h, Options{Samples: 1000, Seed: 5})
	if got > 0.01 {
		t.Errorf("suspiciously large MC estimate %v for a 1e-4 event", got)
	}
}

func TestEstimateZeroAndOne(t *testing.T) {
	q := cq.MustParse("R(x)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.ProbOne)
	if got := Estimate(q, h, Options{Samples: 100, Seed: 1}); got != 1 {
		t.Errorf("certain query estimate = %v", got)
	}
	h2 := pdb.Empty()
	h2.Add(pdb.NewFact("R", "a"), pdb.NewProb(0, 1))
	if got := Estimate(q, h2, Options{Samples: 100, Seed: 1}); got != 0 {
		t.Errorf("impossible query estimate = %v", got)
	}
}
