// Package montecarlo implements the naive Monte-Carlo baseline for PQE:
// sample worlds by flipping each fact independently and report the
// fraction satisfying the query. Its guarantee is *additive* — error
// ~ 1/√samples regardless of Pr(Q) — so for small probabilities it
// needs Ω(1/Pr(Q)²) samples to achieve any relative accuracy, which is
// exponential in the input when Pr(Q) is exponentially small. The
// paper's FPRAS gives a *relative* (1±ε) guarantee, which is the whole
// point; experiment E11 measures the contrast.
package montecarlo

import (
	"math/rand"

	"pqe/internal/cq"
	"pqe/internal/eval"
	"pqe/internal/hypertree"
	"pqe/internal/pdb"
)

// Options configures the estimator.
type Options struct {
	// Samples is the number of sampled worlds. Default 10000.
	Samples int
	// Seed seeds the deterministic PRNG (ignored when Rng is set).
	Seed int64
	// Rng supplies randomness when non-nil.
	Rng *rand.Rand
	// Dec, when non-nil, evaluates satisfaction with the
	// decomposition-driven plan instead of backtracking.
	Dec *hypertree.Decomposition
}

// Estimate returns the naive Monte-Carlo estimate of Pr_H(Q).
func Estimate(q *cq.Query, h *pdb.Probabilistic, opts Options) float64 {
	samples := opts.Samples
	if samples <= 0 {
		samples = 10000
	}
	rng := opts.Rng
	if rng == nil {
		seed := opts.Seed
		if seed == 0 {
			seed = 1
		}
		rng = rand.New(rand.NewSource(seed))
	}

	n := h.Size()
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		probs[i] = h.ProbAt(i).Float()
	}
	mask := make([]bool, n)
	hits := 0
	for s := 0; s < samples; s++ {
		for i := range mask {
			mask[i] = rng.Float64() < probs[i]
		}
		world := h.DB().Subinstance(mask)
		var sat bool
		if opts.Dec != nil {
			sat = eval.Satisfies(world, q, opts.Dec)
		} else {
			sat = cq.Satisfies(world, q)
		}
		if sat {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}
