package pqe

import (
	"fmt"
	"math/big"

	"pqe/internal/pdb"
)

// Delta is an ordered batch of fact-level mutations, built with the
// chainable Insert/Delete/Reweight methods and applied atomically with
// Database.ApplyDelta or Estimator.ApplyDelta:
//
//	delta := pqe.NewDelta().
//	    Insert("R", big.NewRat(1, 2), "a", "b").
//	    Delete("S", "x", "y").
//	    Reweight("T", big.NewRat(2, 3), "c")
//
// Ops validate when the delta is applied, against the database with the
// preceding ops virtually in effect — so one delta may delete a fact
// and re-insert it. On any invalid op nothing is applied.
type Delta struct {
	ops []deltaOp
}

type deltaOp struct {
	kind pdb.DeltaKind
	fact pdb.Fact
	prob *big.Rat // nil means probability 1 (inserts/reweights)
}

// NewDelta returns an empty delta.
func NewDelta() *Delta { return &Delta{} }

// Insert adds a fact-insertion op. prob is the new fact's probability
// (nil means 1); the fact must be absent when the delta is applied.
func (d *Delta) Insert(relation string, prob *big.Rat, args ...string) *Delta {
	d.ops = append(d.ops, deltaOp{kind: pdb.DeltaInsert, fact: pdb.NewFact(relation, args...), prob: prob})
	return d
}

// Delete adds a fact-deletion op. The fact must be present when the
// delta is applied.
func (d *Delta) Delete(relation string, args ...string) *Delta {
	d.ops = append(d.ops, deltaOp{kind: pdb.DeltaDelete, fact: pdb.NewFact(relation, args...)})
	return d
}

// Reweight adds an op that replaces the probability of an existing fact
// (nil means 1) without changing the fact ordering — the mutation
// estimator sessions absorb by re-weighting alone.
func (d *Delta) Reweight(relation string, prob *big.Rat, args ...string) *Delta {
	d.ops = append(d.ops, deltaOp{kind: pdb.DeltaReweight, fact: pdb.NewFact(relation, args...), prob: prob})
	return d
}

// Len returns the number of ops in the batch.
func (d *Delta) Len() int { return len(d.ops) }

// String renders the delta as a replayable op trace, e.g.
// "+R(a,b):1/2 -S(x,y) ~T(c):2/3".
func (d *Delta) String() string {
	ops, err := d.compile()
	if err != nil {
		return fmt.Sprintf("invalid delta: %v", err)
	}
	return ops.String()
}

// compile lowers the builder ops to the internal representation,
// validating probability ranges.
func (d *Delta) compile() (pdb.Delta, error) {
	ops := make(pdb.Delta, len(d.ops))
	for i, op := range d.ops {
		p := pdb.ProbOne
		if op.prob != nil {
			if op.prob.Sign() < 0 || op.prob.Cmp(big.NewRat(1, 1)) > 0 {
				return nil, fmt.Errorf("pqe: delta op %d: probability %v outside [0,1]", i, op.prob)
			}
			p = pdb.ProbFromRat(op.prob)
		}
		ops[i] = pdb.DeltaOp{Kind: op.kind, Fact: op.fact, Prob: p}
	}
	return ops, nil
}

// DeltaSummary reports what an applied delta did.
type DeltaSummary struct {
	Inserts   int
	Deletes   int
	Reweights int
	// Version is the database version after the delta (see
	// Database.Version).
	Version uint64
}

func summary(s pdb.DeltaSummary) DeltaSummary {
	return DeltaSummary{Inserts: s.Inserts, Deletes: s.Deletes, Reweights: s.Reweights, Version: s.Version}
}

// ApplyDelta applies the batch to the database atomically: either every
// op validates (in order, each against the result of the preceding
// ones) and all are applied, or none are and the database is unchanged.
func (d *Database) ApplyDelta(delta *Delta) (DeltaSummary, error) {
	ops, err := delta.compile()
	if err != nil {
		return DeltaSummary{}, err
	}
	s, err := d.h.ApplyDelta(ops)
	return summary(s), err
}

// Version returns the database's mutation counter. It increases with
// every AddFact, applied delta op, or other mutation; estimator
// sessions use it to detect changes made behind their back.
func (d *Database) Version() uint64 { return d.h.Version() }

// ApplyDelta applies a fact-level delta to the session's database and
// incrementally maintains the session's caches. Reweight-only deltas
// keep every automaton and rebuild just the probability weighting on
// the next evaluation; inserts and deletes re-derive only the automaton
// parts that touch the changed relations. Estimates after ApplyDelta
// are bit-identical to those of a fresh Estimator on the same database
// state with the same options and seed.
//
// The delta mutates the *Database passed to NewEstimator (they share
// storage), so other sessions over the same database will notice the
// version change and rebuild.
func (e *Estimator) ApplyDelta(delta *Delta) (DeltaSummary, error) {
	ops, err := delta.compile()
	if err != nil {
		return DeltaSummary{}, err
	}
	s, err := e.est.ApplyDelta(ops)
	return summary(s), err
}
