package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// compareRow is the subset of a bench JSON row the comparison needs;
// both suites (countnfta and countnfa) share these fields.
type compareRow struct {
	Name        string `json:"name"`
	Workers     int    `json:"workers"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
}

type compareFile struct {
	Suite   string       `json:"suite"`
	Results []compareRow `json:"results"`
}

func loadCompareFile(path string) (*compareFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f compareFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// runCompare prints per-row ns_per_op and allocs_per_op deltas between
// two bench JSON files (rows matched by (name, workers)) and a geomean
// summary of the ns ratios. Rows present in only one file are reported
// explicitly as added (new workloads without a baseline) or removed
// (baseline workloads that disappeared — often an accidental rename
// that would otherwise silently drop a regression gate). With
// maxRegress > 0 it returns an error if any matched row's ns_per_op
// grew by more than that fraction, or if any baseline row disappeared
// — the CI bench-delta lane's failure conditions. A vanished row is a
// gate failure because an unbounded regression hides behind a rename.
func runCompare(oldPath, newPath string, maxRegress float64, stdout io.Writer) error {
	oldF, err := loadCompareFile(oldPath)
	if err != nil {
		return err
	}
	newF, err := loadCompareFile(newPath)
	if err != nil {
		return err
	}
	type key struct {
		name    string
		workers int
	}
	oldRows := make(map[key]compareRow, len(oldF.Results))
	for _, r := range oldF.Results {
		oldRows[key{r.Name, r.Workers}] = r
	}

	fmt.Fprintf(stdout, "%-40s %4s %14s %14s %8s %10s\n",
		"name", "w", "old ns/op", "new ns/op", "Δns", "Δallocs")
	newRows := make(map[key]bool, len(newF.Results))
	logSum, matched := 0.0, 0
	var regressions, added []string
	for _, nr := range newF.Results {
		newRows[key{nr.Name, nr.Workers}] = true
		or, ok := oldRows[key{nr.Name, nr.Workers}]
		if !ok {
			added = append(added, fmt.Sprintf("%s (workers=%d): %d ns/op, %d allocs/op",
				nr.Name, nr.Workers, nr.NsPerOp, nr.AllocsPerOp))
			continue
		}
		if or.NsPerOp <= 0 || nr.NsPerOp <= 0 {
			continue
		}
		ratio := float64(nr.NsPerOp) / float64(or.NsPerOp)
		logSum += math.Log(ratio)
		matched++
		dAllocs := "n/a"
		if or.AllocsPerOp > 0 {
			dAllocs = fmt.Sprintf("%+.1f%%", 100*(float64(nr.AllocsPerOp)/float64(or.AllocsPerOp)-1))
		}
		fmt.Fprintf(stdout, "%-40s %4d %14d %14d %+7.1f%% %10s\n",
			nr.Name, nr.Workers, or.NsPerOp, nr.NsPerOp, 100*(ratio-1), dAllocs)
		if maxRegress > 0 && ratio > 1+maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("%s (workers=%d): %+.1f%%", nr.Name, nr.Workers, 100*(ratio-1)))
		}
	}
	var removed []string
	for _, or := range oldF.Results {
		if !newRows[key{or.Name, or.Workers}] {
			removed = append(removed, fmt.Sprintf("%s (workers=%d)", or.Name, or.Workers))
		}
	}
	for _, r := range added {
		fmt.Fprintln(stdout, "ADDED (no baseline):", r)
	}
	for _, r := range removed {
		fmt.Fprintln(stdout, "REMOVED (baseline only):", r)
	}
	if matched == 0 {
		return fmt.Errorf("no rows matched between %s and %s", oldPath, newPath)
	}
	geomean := math.Exp(logSum / float64(matched))
	fmt.Fprintf(stdout, "\ngeomean ns_per_op ratio over %d rows: %.3f (%+.1f%%)\n",
		matched, geomean, 100*(geomean-1))
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(stdout, "REGRESSION:", r)
		}
		return fmt.Errorf("%d row(s) regressed beyond %.0f%%", len(regressions), 100*maxRegress)
	}
	if maxRegress > 0 && len(removed) > 0 {
		return fmt.Errorf("%d baseline row(s) missing from %s (rename or dropped workload evades the regression gate)",
			len(removed), newPath)
	}
	return nil
}
