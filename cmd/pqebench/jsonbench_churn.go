package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/gen"
	"pqe/internal/hypertree"
	"pqe/internal/pdb"
	"pqe/internal/reduction"
)

// The churn suite measures fact-level update workloads: per op, delete
// and re-insert n facts (|D| stays constant) and rebuild the automaton.
// Each workload runs twice — "incremental" keeps a builder session
// across ops so only the parts over mutated relations re-derive, and
// "rebuild" constructs from scratch — making the incremental-vs-full
// construction gap a committed, regression-gated number.
//
// The construction rows churn the facts of a single relation — the
// middle atom's, the worst single-relation placement for the memoized
// rebuild since it also dirties the parent vertex's child combinations.
// Localized updates are the workload incremental maintenance targets: a
// batch that touches every relation dirties every decomposition vertex
// and degenerates to a full re-enumeration by design, so measuring it
// would only show the two rows converging. The ChurnEstimate rows run
// the same single-relation delta through an estimator session
// (ApplyDelta + re-estimate) against one-shot evaluation.

// churner replays a deterministic delete+insert sequence over one
// relation: each step removes the rotating victim fact and inserts a
// variant with a "~" toggled on its last argument. Starting two
// churners from clones of one database yields identical mutation
// sequences, so incremental and rebuild rows see the same instance
// evolution.
type churner struct {
	d   *pdb.Database
	rel string
	ctr int
}

// next picks the victim and its toggled replacement without mutating
// the database (for delta construction where ApplyDelta mutates).
func (c *churner) next() (del, ins pdb.Fact) {
	facts := c.d.FactsOf(c.rel)
	del = facts[c.ctr%len(facts)]
	c.ctr++
	args := append([]string(nil), del.Args...)
	last := len(args) - 1
	if strings.HasSuffix(args[last], "~") {
		args[last] = strings.TrimSuffix(args[last], "~")
	} else {
		args[last] += "~"
	}
	ins = pdb.NewFact(del.Relation, args...)
	return del, ins
}

// step mutates one fact of the churned relation and reports the
// delete+insert pair.
func (c *churner) step() (del, ins pdb.Fact) {
	del, ins = c.next()
	c.d.Remove(del)
	c.d.Add(ins)
	return del, ins
}

// churnNs derives the update batch sizes: 1, 10 and 10% of |D|.
func churnNs(size int) []int {
	ns := []int{1, 10}
	if p := size / 10; p > 10 {
		ns = append(ns, p)
	}
	return ns
}

// runJSONBenchChurn runs the churn suite and writes BENCH_churn.json.
// The construction rows are single-threaded by nature (the builders
// replay a deterministic assembly); the ChurnEstimate rows run the
// counting engines at 1 worker and, when workers > 1, again at that
// count.
func runJSONBenchChurn(path string, eps float64, seed int64, workers int, stdout io.Writer) error {
	out := benchFile{
		Suite:     "churn",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Epsilon:   eps,
		Seed:      seed,
	}

	q := cq.PathQuery("R", 6)
	base := gen.SparsePathInstance(q, 26, 2, gen.ProbHalf, seed).DB()
	size := base.Size()
	churnRel := q.Atoms[q.Len()/2].Relation

	for _, n := range churnNs(size) {
		// Tree pipeline construction: Proposition 1 UR automaton.
		{
			c := &churner{d: base.Clone(), rel: churnRel}
			dec, err := hypertree.Decompose(q)
			if err != nil {
				return err
			}
			b, err := reduction.NewURBuilder(q, c.d, dec)
			if err != nil {
				return err
			}
			if _, err := b.Build(nil); err != nil {
				return err
			}
			ops, ns, allocs, bytes := measure(func(i int) {
				for k := 0; k < n; k++ {
					del, ins := c.step()
					b.NoteMutation(del.Relation, true)
					b.NoteMutation(ins.Relation, false)
				}
				if _, err := b.Build(nil); err != nil {
					panic(err)
				}
			})
			out.Results = append(out.Results, benchRecord{
				Name:    fmt.Sprintf("ChurnUR/path6_facts=%d/n=%d/incremental", size, n),
				Workers: 1, Ops: ops, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes,
			})

			c = &churner{d: base.Clone(), rel: churnRel}
			ops, ns, allocs, bytes = measure(func(i int) {
				for k := 0; k < n; k++ {
					c.step()
				}
				dec, err := hypertree.Decompose(q)
				if err != nil {
					panic(err)
				}
				if _, err := reduction.BuildUR(q, c.d, dec); err != nil {
					panic(err)
				}
			})
			out.Results = append(out.Results, benchRecord{
				Name:    fmt.Sprintf("ChurnUR/path6_facts=%d/n=%d/rebuild", size, n),
				Workers: 1, Ops: ops, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes,
			})
		}

		// String pipeline construction: Section 3 path automaton.
		{
			c := &churner{d: base.Clone(), rel: churnRel}
			b, err := reduction.NewPathBuilder(q, c.d)
			if err != nil {
				return err
			}
			if _, err := b.Build(); err != nil {
				return err
			}
			ops, ns, allocs, bytes := measure(func(i int) {
				for k := 0; k < n; k++ {
					del, ins := c.step()
					b.NoteMutation(del.Relation, true)
					b.NoteMutation(ins.Relation, false)
				}
				if _, err := b.Build(); err != nil {
					panic(err)
				}
			})
			out.Results = append(out.Results, benchRecord{
				Name:    fmt.Sprintf("ChurnPath/path6_facts=%d/n=%d/incremental", size, n),
				Workers: 1, Ops: ops, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes,
			})

			c = &churner{d: base.Clone(), rel: churnRel}
			ops, ns, allocs, bytes = measure(func(i int) {
				for k := 0; k < n; k++ {
					c.step()
				}
				if _, err := reduction.PathNFA(q, c.d); err != nil {
					panic(err)
				}
			})
			out.Results = append(out.Results, benchRecord{
				Name:    fmt.Sprintf("ChurnPath/path6_facts=%d/n=%d/rebuild", size, n),
				Workers: 1, Ops: ops, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes,
			})
		}
	}

	// End-to-end delta + re-estimate on a smaller weighted instance:
	// an ApplyDelta session against a one-shot evaluation per update.
	// Light counting knobs keep the sampling share small so the rows
	// reflect the construction work a dynamic database re-pays.
	estQ := cq.PathQuery("R", 3)
	estRel := estQ.Atoms[estQ.Len()/2].Relation
	hBase := gen.SparsePathInstance(estQ, 8, 2, gen.ProbHalf, seed)
	workerCounts := []int{1}
	if workers > 1 {
		workerCounts = append(workerCounts, workers)
	}
	for _, w := range workerCounts {
		estOpts := core.Options{Epsilon: eps, Trials: 1, Samples: 4, Seed: seed, Workers: w}
		for _, n := range []int{1, 4} {
			estSize := hBase.Size()
			{
				h := hBase.Clone()
				c := &churner{d: h.DB(), rel: estRel}
				est := core.NewEstimator(estQ, h, estOpts)
				if _, err := est.UREstimate(estOpts); err != nil {
					return err
				}
				ops, ns, allocs, bytes := measure(func(i int) {
					delta := make(pdb.Delta, 0, 2*n)
					for k := 0; k < n; k++ {
						del, ins := c.next()
						delta = append(delta, pdb.Delete(del), pdb.Insert(ins, pdb.ProbOne))
					}
					if _, err := est.ApplyDelta(delta); err != nil {
						panic(err)
					}
					if _, err := est.UREstimate(estOpts); err != nil {
						panic(err)
					}
				})
				out.Results = append(out.Results, benchRecord{
					Name:    fmt.Sprintf("ChurnEstimate/path3_facts=%d/n=%d/session", estSize, n),
					Workers: w, Ops: ops, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes,
				})
			}
			{
				h := hBase.Clone()
				c := &churner{d: h.DB(), rel: estRel}
				ops, ns, allocs, bytes := measure(func(i int) {
					for k := 0; k < n; k++ {
						c.step()
					}
					if _, err := core.UREstimate(estQ, h.DB(), estOpts); err != nil {
						panic(err)
					}
				})
				out.Results = append(out.Results, benchRecord{
					Name:    fmt.Sprintf("ChurnEstimate/path3_facts=%d/n=%d/fresh", estSize, n),
					Workers: w, Ops: ops, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes,
				})
			}
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d results)\n", path, len(out.Results))
	return nil
}
