package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/gen"
	"pqe/internal/pdb"
	"pqe/internal/shard"
)

// shardTrials is the fixed trial schedule of the shard suite: large
// enough that every worker of the widest pool gets a non-empty range.
const shardTrials = 8

// shardBenchRecord is one row of BENCH_shard.json. Workers 0 is the
// in-process baseline; every sharded row must reproduce its
// EstimateBits exactly — the suite's correctness gate rides on the
// benchmark file itself.
type shardBenchRecord struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	Ops     int    `json:"ops"`
	NsPerOp int64  `json:"ns_per_op"`
	// TrialsPerOp is the number of FPRAS trials dispatched to workers
	// per evaluation, from the pool's dispatch counters (0 for the
	// in-process baseline).
	TrialsPerOp int64 `json:"trials_per_op"`
	// Estimate is the probability; EstimateBits its exact float64
	// encoding, so bit-identity across worker counts survives the JSON
	// round trip.
	Estimate     float64 `json:"estimate"`
	EstimateBits uint64  `json:"estimate_bits"`
}

type shardBenchFile struct {
	Suite     string             `json:"suite"`
	GoVersion string             `json:"go_version"`
	NumCPU    int                `json:"num_cpu"`
	Epsilon   float64            `json:"epsilon"`
	Seed      int64              `json:"seed"`
	Trials    int                `json:"trials"`
	Results   []shardBenchRecord `json:"results"`
}

type shardWorkload struct {
	name string
	q    *cq.Query
	h    *pdb.Probabilistic
	// eval pins the engine: the tree FPRAS for one workload and the
	// string (path-NFA) FPRAS for the other, so both sharded counting
	// paths are exercised.
	eval func(q *cq.Query, h *pdb.Probabilistic, opts core.Options) (float64, error)
}

// shardWorkloads are FPRAS-bound instances (wide enough that no exact
// route applies), one tree-engine and one string-engine shape.
func shardWorkloads() []shardWorkload {
	path := cq.PathQuery("R", 3)
	star := cq.StarQuery("S", 3)
	return []shardWorkload{
		{"path3/nfa", path,
			gen.Instance(path, gen.Config{FactsPerRelation: 10, DomainSize: 4, Seed: 13}),
			core.PathPQEEstimate},
		{"star3/nfta", star,
			gen.Instance(star, gen.Config{FactsPerRelation: 10, DomainSize: 3, Seed: 14}),
			core.PQEEstimate},
	}
}

// runJSONBenchShard benchmarks distributed trial sharding against real
// worker processes: an in-process baseline, then pools of baseWorkers
// and 2×baseWorkers subprocesses, writing BENCH_shard.json. Every
// sharded estimate must be bit-identical to the baseline; the writer
// fails fast on a mismatch rather than record a broken file.
func runJSONBenchShard(path string, eps float64, seed int64, baseWorkers int, stdout io.Writer) error {
	out := shardBenchFile{
		Suite:     "shard",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Epsilon:   eps,
		Seed:      seed,
		Trials:    shardTrials,
	}

	workloads := shardWorkloads()
	opts := func(i int) core.Options {
		return core.Options{Epsilon: eps, Seed: seed + int64(i), Trials: shardTrials}
	}

	// In-process baseline rows (workers = 0).
	baseline := map[string]uint64{}
	for _, wl := range workloads {
		var last float64
		ops, ns, _, _ := measure(func(i int) {
			p, err := wl.eval(wl.q, wl.h, opts(i))
			if err != nil {
				panic(fmt.Sprintf("shard baseline %s: %v", wl.name, err))
			}
			last = p
		})
		// The timed loop varies the seed per op; re-run the fixed seed so
		// the recorded estimate is the one sharded rows must reproduce.
		p, err := wl.eval(wl.q, wl.h, opts(0))
		if err != nil {
			return err
		}
		last = p
		baseline[wl.name] = math.Float64bits(last)
		out.Results = append(out.Results, shardBenchRecord{
			Name: wl.name, Workers: 0, Ops: ops, NsPerOp: ns,
			Estimate: last, EstimateBits: math.Float64bits(last),
		})
	}

	counts := []int{baseWorkers, 2 * baseWorkers}
	total := counts[len(counts)-1]
	addrs, stopWorkers, err := spawnWorkers(total)
	if err != nil {
		return err
	}
	defer stopWorkers()

	for _, n := range counts {
		pool, err := shard.Dial(addrs[:n], shard.PoolConfig{})
		if err != nil {
			return err
		}
		for _, wl := range workloads {
			sopts := func(i int) core.Options {
				o := opts(i)
				o.Shard = pool
				return o
			}
			var last float64
			ops, ns, _, _ := measure(func(i int) {
				p, err := wl.eval(wl.q, wl.h, sopts(i))
				if err != nil {
					panic(fmt.Sprintf("shard %s workers=%d: %v", wl.name, n, err))
				}
				last = p
			})
			before := pool.Stats()
			p, err := wl.eval(wl.q, wl.h, sopts(0))
			if err != nil {
				pool.Close()
				return err
			}
			last = p
			trialsPerOp := pool.Stats().TrialsDispatched - before.TrialsDispatched
			if bits := math.Float64bits(last); bits != baseline[wl.name] {
				pool.Close()
				return fmt.Errorf("shard %s workers=%d: estimate %v (bits %#x) != baseline bits %#x: not bit-identical",
					wl.name, n, last, bits, baseline[wl.name])
			}
			out.Results = append(out.Results, shardBenchRecord{
				Name: wl.name, Workers: n, Ops: ops, NsPerOp: ns,
				TrialsPerOp: trialsPerOp,
				Estimate:    last, EstimateBits: math.Float64bits(last),
			})
		}
		pool.Close()
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d results, workers %v, bit-identical to baseline)\n",
		path, len(out.Results), counts)
	return nil
}
