package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"pqe/internal/core"
	"pqe/internal/count"
	"pqe/internal/cq"
	"pqe/internal/efloat"
	"pqe/internal/gen"
	"pqe/internal/nfta"
	"pqe/internal/obs"
)

// benchRecord is one machine-readable benchmark row in
// BENCH_countnfta.json.
type benchRecord struct {
	Name        string      `json:"name"`
	Workers     int         `json:"workers"`
	Ops         int         `json:"ops"`
	NsPerOp     int64       `json:"ns_per_op"`
	AllocsPerOp uint64      `json:"allocs_per_op"`
	BytesPerOp  uint64      `json:"bytes_per_op"`
	Stats       *benchStats `json:"stats,omitempty"`
	Stages      *stageNs    `json:"stage_ns,omitempty"`
}

// stageNs is the per-op pipeline timing breakdown, aggregated from the
// obs stage spans of a short instrumented pass run *after* the timed
// loop (the ns_per_op measurement itself stays uninstrumented, so it is
// comparable across releases).
type stageNs struct {
	// Build covers decomposition, automaton construction and multiplier
	// weighting (pqe.decompose / pqe.build_* / pqe.weight_*), trim
	// excluded.
	Build int64 `json:"build"`
	// Trim covers the automaton trims (pqe.trim_ur / pqe.trim_path).
	Trim int64 `json:"trim"`
	// Sample covers the counting engines (count.trees / count.nfa).
	Sample int64 `json:"sample"`
}

// measureStages runs fn a few times under a fresh tracer and averages
// the span durations into the build/trim/sample breakdown. Trim spans
// nest inside build spans, so their time is subtracted from Build.
func measureStages(runs int, fn func(sc *obs.Scope, i int)) *stageNs {
	tr := obs.NewTracer()
	sc := obs.NewScope(tr, nil, nil)
	for i := 0; i < runs; i++ {
		fn(sc, i)
	}
	var out stageNs
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		switch s.Name() {
		case "pqe.decompose", "pqe.build_ur", "pqe.build_path_nfa", "pqe.weight_ur", "pqe.weight_path":
			out.Build += s.Duration().Nanoseconds()
		case "pqe.trim_ur", "pqe.trim_path":
			out.Trim += s.Duration().Nanoseconds()
		case "count.trees", "count.nfa":
			out.Sample += s.Duration().Nanoseconds()
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, r := range tr.Roots() {
		walk(r)
	}
	out.Build -= out.Trim
	if out.Build < 0 {
		out.Build = 0
	}
	n := int64(runs)
	out.Build /= n
	out.Trim /= n
	out.Sample /= n
	return &out
}

// stageRuns is the instrumented-pass repetition count behind each
// stage_ns row.
const stageRuns = 5

// benchStats carries the estimator's own effort counters (per op).
type benchStats struct {
	TreeKeys     int   `json:"tree_keys"`
	ForestKeys   int   `json:"forest_keys"`
	UnionSamples int   `json:"union_samples"`
	Rejections   int   `json:"rejections"`
	WallNs       int64 `json:"wall_ns"`
}

type benchFile struct {
	Suite     string        `json:"suite"`
	GoVersion string        `json:"go_version"`
	NumCPU    int           `json:"num_cpu"`
	Epsilon   float64       `json:"epsilon"`
	Seed      int64         `json:"seed"`
	Results   []benchRecord `json:"results"`
}

// benchTime is the per-workload measurement budget: each workload is
// repeated until it has consumed this much wall time (at least once).
const benchTime = 300 * time.Millisecond

// heavyOverlap mirrors the count package's benchmark automaton: six
// fully redundant branches under one root symbol keep the union
// estimator in its overlap-sampling loop.
func heavyOverlap() *nfta.NFTA {
	a := nfta.New()
	top := a.AddState()
	for i := 0; i < 6; i++ {
		s := a.AddState()
		a.AddTransition(s, "a", s)
		a.AddTransition(s, "b")
		a.AddTransition(top, "f", s)
	}
	a.SetInitial(top)
	return a
}

// measure runs fn until benchTime has elapsed and reports per-op time
// and allocation figures from runtime.MemStats deltas.
func measure(fn func(i int)) (ops int, nsPerOp int64, allocsPerOp, bytesPerOp uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for time.Since(start) < benchTime {
		fn(ops)
		ops++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return ops, elapsed.Nanoseconds() / int64(ops),
		(after.Mallocs - before.Mallocs) / uint64(ops),
		(after.TotalAlloc - before.TotalAlloc) / uint64(ops)
}

// runJSONBench runs the CountNFTA micro-benchmark suite at each worker
// count and writes BENCH_countnfta.json.
func runJSONBench(path string, eps float64, seed int64, workers int, stdout io.Writer) error {
	out := benchFile{
		Suite:     "countnfta",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Epsilon:   eps,
		Seed:      seed,
	}
	counts := []int{1}
	if workers > 1 {
		counts = append(counts, workers)
	}

	ur := []struct {
		name string
		q    *cq.Query
	}{
		{"UREstimate/path3", cq.PathQuery("R", 3)},
		{"UREstimate/star3", cq.StarQuery("S", 3)},
		{"UREstimate/triangle", cq.CycleQuery("C", 3)},
	}
	for _, w := range counts {
		for _, tc := range ur {
			h := gen.Instance(tc.q, gen.Config{FactsPerRelation: 3, DomainSize: 3, Seed: 2})
			d := h.DB()
			var st count.Stats
			ops, ns, allocs, bytes := measure(func(i int) {
				v, err := core.UREstimate(tc.q, d, core.Options{
					Epsilon: eps, Seed: seed + int64(i), Workers: w, CountStats: &st,
				})
				if err != nil || v.IsZero() {
					panic(fmt.Sprintf("%s: err=%v v=%v", tc.name, err, v))
				}
			})
			rec := record(tc.name, w, ops, ns, allocs, bytes, &st)
			rec.Stages = measureStages(stageRuns, func(sc *obs.Scope, i int) {
				_, _ = core.UREstimate(tc.q, d, core.Options{
					Epsilon: eps, Seed: seed + int64(i), Workers: w, Obs: sc,
				})
			})
			out.Results = append(out.Results, rec)
		}

		a := heavyOverlap()
		var st count.Stats
		var v efloat.E
		ops, ns, allocs, bytes := measure(func(i int) {
			v = count.Trees(a, 24, count.Options{
				Epsilon: eps, Trials: 3, Seed: seed + int64(i), Workers: w, Stats: &st,
			})
		})
		if v.IsZero() {
			return fmt.Errorf("CountTrees/heavyOverlap: estimate collapsed to zero")
		}
		rec := record("CountTrees/heavyOverlap/n=24", w, ops, ns, allocs, bytes, &st)
		rec.Stages = measureStages(stageRuns, func(sc *obs.Scope, i int) {
			count.Trees(a, 24, count.Options{
				Epsilon: eps, Trials: 3, Seed: seed + int64(i), Workers: w, Obs: sc,
			})
		})
		out.Results = append(out.Results, rec)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d results)\n", path, len(out.Results))
	return nil
}

// record averages the accumulated estimator counters over the ops and
// packages one result row.
func record(name string, workers, ops int, ns int64, allocs, bytes uint64, st *count.Stats) benchRecord {
	return benchRecord{
		Name:        name,
		Workers:     workers,
		Ops:         ops,
		NsPerOp:     ns,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Stats: &benchStats{
			TreeKeys:     st.TreeKeys / ops,
			ForestKeys:   st.ForestKeys / ops,
			UnionSamples: st.UnionSamples / ops,
			Rejections:   st.Rejections / ops,
			WallNs:       st.WallTime.Nanoseconds() / int64(ops),
		},
	}
}
