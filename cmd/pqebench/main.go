// Command pqebench regenerates the experiment tables of the
// reproduction: the paper's Table 1 landscape plus the derived
// experiments E2–E11 and ablations A1–A2 (see DESIGN.md for the index).
//
// Usage:
//
//	pqebench                  # run the full suite, text tables
//	pqebench -exp E5          # one experiment
//	pqebench -markdown        # GitHub-flavored markdown (EXPERIMENTS.md)
//	pqebench -eps 0.05 -seed 7 -quick
//	pqebench -maxprocs 8      # counting-engine scheduler workers
//	pqebench -json            # engine micro-benchmarks -> BENCH_countnfta.json + BENCH_countnfa.json + BENCH_churn.json + BENCH_router.json + BENCH_shard.json
//	pqebench -compare old.json new.json   # per-row ns/allocs deltas + geomean
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"pqe/internal/experiments"
	"pqe/internal/flagcheck"
	"pqe/internal/obs"
)

func main() {
	maybeShardWorker()
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pqebench:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pqebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp            = fs.String("exp", "all", "experiment ID (T1, E2..E11, A1, A2) or 'all'")
		eps            = fs.Float64("eps", 0.1, "FPRAS target relative error ε")
		seed           = fs.Int64("seed", 1, "random seed")
		quick          = fs.Bool("quick", false, "shrink sweeps for a fast pass")
		markdown       = fs.Bool("markdown", false, "emit GitHub-flavored markdown")
		maxprocs       = fs.Int("maxprocs", 0, "workers of the counting engines' unified scheduler (default: -workers)")
		workers        = fs.Int("workers", runtime.NumCPU(), "deprecated alias for -maxprocs")
		compare        = fs.Bool("compare", false, "compare two bench JSON files given as positional args: per-row ns_per_op/allocs deltas and a geomean summary")
		maxRegress     = fs.Float64("max-regress", 0, "with -compare, exit non-zero if any row's ns_per_op regresses by more than this fraction (0 disables; 0.25 = 25%)")
		jsonOut        = fs.Bool("json", false, "run the CountNFTA + CountNFA micro-benchmarks and write -json-out / -json-nfa-out instead of experiment tables")
		jsonPath       = fs.String("json-out", "BENCH_countnfta.json", "output path for the tree-engine suite under -json")
		jsonNFAPath    = fs.String("json-nfa-out", "BENCH_countnfa.json", "output path for the string-engine suite under -json")
		jsonChurnPath  = fs.String("json-churn-out", "BENCH_churn.json", "output path for the fact-churn (incremental vs rebuild) suite under -json")
		jsonRouterPath = fs.String("json-router-out", "BENCH_router.json", "output path for the routed-vs-forced-FPRAS mixed workload under -json")
		jsonShardPath  = fs.String("json-shard-out", "BENCH_shard.json", "output path for the multi-process trial-sharding suite under -json")
		shardWorkers   = fs.Int("shard-workers", 2, "base worker-process count of the shard suite (it runs at N and 2N)")
		debugAddr      = fs.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address while the suite runs (CPU profiles carry the engines' pqe_engine/pqe_stage labels)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Out-of-range numerics fail loudly instead of silently clamping.
	if err := flagcheck.NonNegative("maxprocs", *maxprocs); err != nil {
		return err
	}
	if err := flagcheck.Positive("workers", *workers); err != nil {
		return err
	}
	if err := flagcheck.Positive("shard-workers", *shardWorkers); err != nil {
		return err
	}

	procs := *maxprocs
	if procs <= 0 {
		procs = *workers
	}

	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two positional args: old.json new.json")
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *maxRegress, stdout)
	}

	if *debugAddr != "" {
		bound, err := obs.Serve(*debugAddr, obs.Handler(nil, nil, nil))
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "debug server on http://%s/\n", bound)
	}

	if *jsonOut {
		if err := runJSONBench(*jsonPath, *eps, *seed, procs, stdout); err != nil {
			return err
		}
		if err := runJSONBenchNFA(*jsonNFAPath, *eps, *seed, procs, stdout); err != nil {
			return err
		}
		if err := runJSONBenchChurn(*jsonChurnPath, *eps, *seed, procs, stdout); err != nil {
			return err
		}
		if err := runJSONBenchRouter(*jsonRouterPath, *eps, *seed, procs, stdout); err != nil {
			return err
		}
		return runJSONBenchShard(*jsonShardPath, *eps, *seed, *shardWorkers, stdout)
	}

	opts := experiments.Opts{Epsilon: *eps, Seed: *seed, Quick: *quick, Workers: procs}
	var tables []*experiments.Table
	if strings.EqualFold(*exp, "all") {
		tables = experiments.All(opts)
	} else {
		f := experiments.ByID(*exp)
		if f == nil {
			return fmt.Errorf("unknown experiment %q (known: %s, all)",
				*exp, strings.Join(experiments.IDs(), ", "))
		}
		tables = []*experiments.Table{f(opts)}
	}
	for _, t := range tables {
		if *markdown {
			t.Markdown(stdout)
		} else {
			t.Format(stdout)
		}
	}
	return nil
}
