package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"pqe/internal/shard"
)

// workerEnv marks a re-executed pqebench (or its test binary) as a
// shard worker process: it listens on loopback, prints the bound
// address, serves trial ranges, and exits when its stdin closes. This
// is how the shard suite gets genuinely separate worker processes
// without a second binary.
const workerEnv = "PQEBENCH_SHARD_WORKER"

// workerAddrPrefix is the stdout line the parent scans for.
const workerAddrPrefix = "SHARD_WORKER_ADDR "

// maybeShardWorker turns the process into a shard worker when the env
// var is set. It never returns in that case. Called from both main()
// and TestMain, so the re-exec works for the installed binary and for
// `go test` alike.
func maybeShardWorker() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqebench shard worker:", err)
		os.Exit(2)
	}
	fmt.Printf("%s%s\n", workerAddrPrefix, l.Addr())
	srv := shard.NewServer(shard.ServerConfig{MaxProcs: 2})
	go func() {
		// The parent holds our stdin pipe; EOF means it is done with us
		// (or died), either way we exit rather than linger.
		io.Copy(io.Discard, os.Stdin)
		srv.Close()
	}()
	srv.Serve(l)
	os.Exit(0)
}

// workerProc is one spawned worker subprocess.
type workerProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	addr  string
}

// spawnWorkers re-executes this binary n times in worker mode and
// waits for each to report its listen address. stop closes their
// stdins and reaps them.
func spawnWorkers(n int) (addrs []string, stop func(), err error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	var procs []*workerProc
	stop = func() {
		for _, p := range procs {
			p.stdin.Close()
		}
		for _, p := range procs {
			p.cmd.Wait()
		}
	}
	for i := 0; i < n; i++ {
		p, err := spawnWorker(exe)
		if err != nil {
			stop()
			return nil, nil, err
		}
		procs = append(procs, p)
		addrs = append(addrs, p.addr)
	}
	return addrs, stop, nil
}

func spawnWorker(exe string) (*workerProc, error) {
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), workerEnv+"=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, workerAddrPrefix) {
				addrc <- strings.TrimPrefix(line, workerAddrPrefix)
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
		close(addrc)
	}()
	select {
	case addr, ok := <-addrc:
		if !ok || addr == "" {
			stdin.Close()
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("shard worker exited before reporting an address")
		}
		return &workerProc{cmd: cmd, stdin: stdin, addr: addr}, nil
	case <-time.After(10 * time.Second):
		stdin.Close()
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("shard worker did not report an address within 10s")
	}
}
