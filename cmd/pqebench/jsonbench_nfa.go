package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/gen"
	"pqe/internal/nfa"
	"pqe/internal/obs"
	"pqe/internal/reduction"
)

// nfaBenchStats carries the string engine's effort counters (per op),
// the CountNFA analogue of benchStats.
type nfaBenchStats struct {
	WordKeys     int   `json:"word_keys"`
	UnionKeys    int   `json:"union_keys"`
	UnionSamples int   `json:"union_samples"`
	Rejections   int   `json:"rejections"`
	WallNs       int64 `json:"wall_ns"`
}

type nfaBenchRecord struct {
	Name        string         `json:"name"`
	Workers     int            `json:"workers"`
	Ops         int            `json:"ops"`
	NsPerOp     int64          `json:"ns_per_op"`
	AllocsPerOp uint64         `json:"allocs_per_op"`
	BytesPerOp  uint64         `json:"bytes_per_op"`
	Stats       *nfaBenchStats `json:"stats,omitempty"`
	Stages      *stageNs       `json:"stage_ns,omitempty"`
}

type nfaBenchFile struct {
	Suite     string           `json:"suite"`
	GoVersion string           `json:"go_version"`
	NumCPU    int              `json:"num_cpu"`
	Epsilon   float64          `json:"epsilon"`
	Seed      int64            `json:"seed"`
	Results   []nfaBenchRecord `json:"results"`
}

// runJSONBenchNFA runs the CountNFA (string engine) micro-benchmark
// suite at each worker count and writes BENCH_countnfa.json. The
// workloads mirror the repo's BenchmarkPathEstimate / BenchmarkCountNFA
// so the JSON rows are comparable with `go test -bench` output.
func runJSONBenchNFA(path string, eps float64, seed int64, workers int, stdout io.Writer) error {
	out := nfaBenchFile{
		Suite:     "countnfa",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Epsilon:   eps,
		Seed:      seed,
	}
	counts := []int{1}
	if workers > 1 {
		counts = append(counts, workers)
	}

	for _, w := range counts {
		// E2 workloads: Theorem 2 PathEstimate end to end (automaton
		// construction + counting) at growing query lengths.
		for _, n := range []int{2, 3, 4} {
			q := cq.PathQuery("R", n)
			h := gen.SparsePathInstance(q, 3, 2, gen.ProbHalf, 1)
			d := h.DB()
			var st nfa.Stats
			ops, ns, allocs, bytes := measure(func(i int) {
				v, err := core.PathEstimate(q, d, core.Options{
					Epsilon: eps, Seed: seed + int64(i), Workers: w, NFAStats: &st,
				})
				if err != nil || v.IsZero() {
					panic(fmt.Sprintf("PathEstimate/len=%d: err=%v v=%v", n, err, v))
				}
			})
			rec := nfaRecord(
				fmt.Sprintf("PathEstimate/len=%d_facts=%d", n, d.Size()), w, ops, ns, allocs, bytes, &st)
			rec.Stages = measureStages(stageRuns, func(sc *obs.Scope, i int) {
				_, _ = core.PathEstimate(q, d, core.Options{
					Epsilon: eps, Seed: seed + int64(i), Workers: w, Obs: sc,
				})
			})
			out.Results = append(out.Results, rec)
		}

		// Footnote 2 of §5.1: the weighted string pipeline.
		{
			q := cq.PathQuery("R", 3)
			h := gen.SparsePathInstance(q, 3, 2, gen.ProbRandomRational, 1)
			var st nfa.Stats
			ops, ns, allocs, bytes := measure(func(i int) {
				v, err := core.PathPQEEstimate(q, h, core.Options{
					Epsilon: eps, Seed: seed + int64(i), Workers: w, NFAStats: &st,
				})
				if err != nil || v == 0 {
					panic(fmt.Sprintf("PathPQEEstimate: err=%v v=%v", err, v))
				}
			})
			rec := nfaRecord(
				fmt.Sprintf("PathPQEEstimate/len=3_facts=%d", h.Size()), w, ops, ns, allocs, bytes, &st)
			rec.Stages = measureStages(stageRuns, func(sc *obs.Scope, i int) {
				_, _ = core.PathPQEEstimate(q, h, core.Options{
					Epsilon: eps, Seed: seed + int64(i), Workers: w, Obs: sc,
				})
			})
			out.Results = append(out.Results, rec)
		}

		// Raw counting on a prebuilt automaton: isolates the engine from
		// the reduction.
		{
			q := cq.PathQuery("R", 3)
			h := gen.SparsePathInstance(q, 4, 2, gen.ProbHalf, 1)
			d := h.DB()
			m, err := reduction.PathNFA(q, d)
			if err != nil {
				return err
			}
			var st nfa.Stats
			ops, ns, allocs, bytes := measure(func(i int) {
				v := nfa.Count(m, d.Size(), nfa.CountOptions{
					Epsilon: eps, Seed: seed + int64(i), Workers: w, Stats: &st,
				})
				if v.IsZero() {
					panic("CountNFA: estimate collapsed to zero")
				}
			})
			rec := nfaRecord(
				fmt.Sprintf("CountNFA/path3_facts=%d", d.Size()), w, ops, ns, allocs, bytes, &st)
			rec.Stages = measureStages(stageRuns, func(sc *obs.Scope, i int) {
				nfa.Count(m, d.Size(), nfa.CountOptions{
					Epsilon: eps, Seed: seed + int64(i), Workers: w, Obs: sc,
				})
			})
			out.Results = append(out.Results, rec)
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d results)\n", path, len(out.Results))
	return nil
}

func nfaRecord(name string, workers, ops int, ns int64, allocs, bytes uint64, st *nfa.Stats) nfaBenchRecord {
	return nfaBenchRecord{
		Name:        name,
		Workers:     workers,
		Ops:         ops,
		NsPerOp:     ns,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Stats: &nfaBenchStats{
			WordKeys:     st.WordKeys / ops,
			UnionKeys:    st.UnionKeys / ops,
			UnionSamples: st.UnionSamples / ops,
			Rejections:   st.Rejections / ops,
			WallNs:       st.WallTime.Nanoseconds() / int64(ops),
		},
	}
}
