package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/gen"
	"pqe/internal/obs"
	"pqe/internal/pdb"
)

// routerBenchRecord is one row of BENCH_router.json. Every workload
// appears twice — once under the cost-based router ("Routed/…",
// Strategy auto: exact routes where they apply, anytime sequential
// stopping on the FPRAS routes) and once with the legacy forced tree
// FPRAS ("ForcedFPRAS/…", fixed trial schedule). The mode is part of
// the name so the -compare matcher keys rows the same way as the other
// suites.
type routerBenchRecord struct {
	Name        string `json:"name"`
	Workers     int    `json:"workers"`
	Ops         int    `json:"ops"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	// TrialsPerOp is the number of FPRAS trials the counting engines
	// actually executed per evaluation (0 for exact routes), from the
	// countnfta_trials_total / countnfa_trials_total counters of an
	// instrumented pass run after the timed loop.
	TrialsPerOp int64 `json:"trials_per_op"`
	// Method and Exact record where the evaluation went, so a routing
	// change shows up as a diff even when the timing happens to match.
	Method string `json:"method"`
	Exact  bool   `json:"exact"`
}

type routerBenchFile struct {
	Suite     string  `json:"suite"`
	GoVersion string  `json:"go_version"`
	NumCPU    int     `json:"num_cpu"`
	Epsilon   float64 `json:"epsilon"`
	Seed      int64   `json:"seed"`
	// RoutedSpeedupGeomean is the geometric mean over the workloads of
	// forced-FPRAS ns_per_op / routed ns_per_op at workers=1 — the
	// "spend only what the target needs" headline. The router's
	// contract is that this stays ≥ 2 on the mixed workload.
	RoutedSpeedupGeomean float64             `json:"routed_speedup_geomean"`
	Results              []routerBenchRecord `json:"results"`
}

// routerWorkload is one query–database pair of the mixed workload. The
// mix mirrors Table 1's rows: a hierarchical (safe) query, an unsafe
// query whose lineage is provably small, and an unsafe instance wide
// enough that only the FPRAS applies.
type routerWorkload struct {
	name string
	q    *cq.Query
	h    *pdb.Probabilistic
}

func routerWorkloads() []routerWorkload {
	star := cq.StarQuery("S", 3)
	path := cq.PathQuery("R", 3)
	return []routerWorkload{
		// Safe: the router answers through the Dalvi–Suciu plan, no
		// sampling at all.
		{"hierarchical/star3", star,
			gen.Instance(star, gen.Config{FactsPerRelation: 6, DomainSize: 4, Model: gen.ProbRandomRational, Seed: 11})},
		// Unsafe but tiny: witness bound 27 ≤ 512, exact OBDD lineage WMC.
		{"small_lineage/path3", path,
			gen.Instance(path, gen.Config{FactsPerRelation: 3, DomainSize: 3, Model: gen.ProbRandomRational, Seed: 12})},
		// Unsafe and wide: witness bound 1000 > 512, routed to the
		// path-NFA FPRAS with anytime stopping.
		{"wide_fpras/path3", path,
			gen.Instance(path, gen.Config{FactsPerRelation: 10, DomainSize: 4, Seed: 13})},
	}
}

// trialRuns is the instrumented-pass repetition count behind each
// trials_per_op figure.
const trialRuns = 3

// measureTrials reruns the evaluation under a fresh metrics registry
// and averages the engines' executed-trial counters per op.
func measureTrials(runs int, fn func(sc *obs.Scope, i int)) int64 {
	reg := obs.NewRegistry()
	sc := obs.NewScope(nil, reg, nil)
	for i := 0; i < runs; i++ {
		fn(sc, i)
	}
	total := reg.Counter("countnfta_trials_total").Value() +
		reg.Counter("countnfa_trials_total").Value()
	return total / int64(runs)
}

// runJSONBenchRouter runs the mixed routed-vs-forced-FPRAS workload at
// each worker count and writes BENCH_router.json.
func runJSONBenchRouter(path string, eps float64, seed int64, workers int, stdout io.Writer) error {
	out := routerBenchFile{
		Suite:     "router",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Epsilon:   eps,
		Seed:      seed,
	}
	counts := []int{1}
	if workers > 1 {
		counts = append(counts, workers)
	}

	modes := []struct {
		prefix string
		opts   func(i int, w int) core.Options
	}{
		{"Routed", func(i, w int) core.Options {
			return core.Options{Epsilon: eps, Seed: seed + int64(i), Workers: w, Strategy: "auto"}
		}},
		{"ForcedFPRAS", func(i, w int) core.Options {
			return core.Options{Epsilon: eps, Seed: seed + int64(i), Workers: w, ForceFPRAS: true}
		}},
	}

	// ns_per_op at workers=1 per (workload, mode), for the speedup
	// geomean.
	baseNs := map[string]map[string]int64{}
	for _, m := range modes {
		baseNs[m.prefix] = map[string]int64{}
	}

	for _, w := range counts {
		for _, wl := range routerWorkloads() {
			for _, m := range modes {
				var last core.Result
				ops, ns, allocs, bytes := measure(func(i int) {
					res, err := core.Evaluate(wl.q, wl.h, m.opts(i, w))
					if err != nil || res.Probability <= 0 {
						panic(fmt.Sprintf("%s/%s: err=%v p=%v", m.prefix, wl.name, err, res.Probability))
					}
					last = res
				})
				trials := measureTrials(trialRuns, func(sc *obs.Scope, i int) {
					o := m.opts(i, w)
					o.Obs = sc
					_, _ = core.Evaluate(wl.q, wl.h, o)
				})
				if w == 1 {
					baseNs[m.prefix][wl.name] = ns
				}
				out.Results = append(out.Results, routerBenchRecord{
					Name:        m.prefix + "/" + wl.name,
					Workers:     w,
					Ops:         ops,
					NsPerOp:     ns,
					AllocsPerOp: allocs,
					BytesPerOp:  bytes,
					TrialsPerOp: trials,
					Method:      string(last.Method),
					Exact:       last.Exact,
				})
			}
		}
	}

	logSum, n := 0.0, 0
	for name, routed := range baseNs["Routed"] {
		forced := baseNs["ForcedFPRAS"][name]
		if routed > 0 && forced > 0 {
			logSum += math.Log(float64(forced) / float64(routed))
			n++
		}
	}
	if n > 0 {
		out.RoutedSpeedupGeomean = math.Exp(logSum / float64(n))
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d results, routed speedup geomean %.2fx)\n",
		path, len(out.Results), out.RoutedSpeedupGeomean)
	return nil
}
