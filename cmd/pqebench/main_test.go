package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperimentText(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-exp", "A2", "-quick"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "A2 — Augmented-NFTA translation") {
		t.Errorf("missing table header: %s", out.String())
	}
}

func TestRunMarkdown(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-exp", "A1", "-quick", "-markdown"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### A1") || !strings.Contains(out.String(), "| ---") {
		t.Errorf("not markdown: %s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-exp", "E99"}, &out, &errOut); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Error("bad flag accepted")
	}
}
