package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentText(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-exp", "A2", "-quick"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "A2 — Augmented-NFTA translation") {
		t.Errorf("missing table header: %s", out.String())
	}
}

func TestRunMarkdown(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-exp", "A1", "-quick", "-markdown"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### A1") || !strings.Contains(out.String(), "| ---") {
		t.Errorf("not markdown: %s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-exp", "E99"}, &out, &errOut); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunJSONBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	nfaPath := filepath.Join(dir, "bench_nfa.json")
	var out, errOut strings.Builder
	if err := run([]string{"-json", "-json-out", path, "-json-nfa-out", nfaPath, "-workers", "2"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if f.Suite != "countnfta" {
		t.Errorf("suite = %q", f.Suite)
	}
	// 4 workloads at workers=1 plus 4 at workers=2.
	if len(f.Results) != 8 {
		t.Fatalf("got %d results, want 8", len(f.Results))
	}
	for _, r := range f.Results {
		if r.Ops <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", r.Name, r)
		}
		if r.Stats == nil || r.Stats.TreeKeys <= 0 {
			t.Errorf("%s: missing estimator stats", r.Name)
		}
	}

	data, err = os.ReadFile(nfaPath)
	if err != nil {
		t.Fatal(err)
	}
	var nf nfaBenchFile
	if err := json.Unmarshal(data, &nf); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if nf.Suite != "countnfa" {
		t.Errorf("suite = %q", nf.Suite)
	}
	// 5 workloads at workers=1 plus 5 at workers=2.
	if len(nf.Results) != 10 {
		t.Fatalf("got %d results, want 10", len(nf.Results))
	}
	for _, r := range nf.Results {
		if r.Ops <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", r.Name, r)
		}
		if r.Stats == nil || r.Stats.WordKeys <= 0 || r.Stats.UnionSamples <= 0 {
			t.Errorf("%s: missing engine stats: %+v", r.Name, r.Stats)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Error("bad flag accepted")
	}
}
