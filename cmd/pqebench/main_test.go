package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pqe/internal/flagcheck"
)

func TestRunSingleExperimentText(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-exp", "A2", "-quick"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "A2 — Augmented-NFTA translation") {
		t.Errorf("missing table header: %s", out.String())
	}
}

func TestRunMarkdown(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-exp", "A1", "-quick", "-markdown"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### A1") || !strings.Contains(out.String(), "| ---") {
		t.Errorf("not markdown: %s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-exp", "E99"}, &out, &errOut); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunJSONBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	nfaPath := filepath.Join(dir, "bench_nfa.json")
	churnPath := filepath.Join(dir, "bench_churn.json")
	routerPath := filepath.Join(dir, "bench_router.json")
	shardPath := filepath.Join(dir, "bench_shard.json")
	var out, errOut strings.Builder
	if err := run([]string{"-json", "-json-out", path, "-json-nfa-out", nfaPath,
		"-json-churn-out", churnPath, "-json-router-out", routerPath,
		"-json-shard-out", shardPath, "-workers", "2"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if f.Suite != "countnfta" {
		t.Errorf("suite = %q", f.Suite)
	}
	// 4 workloads at workers=1 plus 4 at workers=2.
	if len(f.Results) != 8 {
		t.Fatalf("got %d results, want 8", len(f.Results))
	}
	for _, r := range f.Results {
		if r.Ops <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", r.Name, r)
		}
		if r.Stats == nil || r.Stats.TreeKeys <= 0 {
			t.Errorf("%s: missing estimator stats", r.Name)
		}
	}

	data, err = os.ReadFile(nfaPath)
	if err != nil {
		t.Fatal(err)
	}
	var nf nfaBenchFile
	if err := json.Unmarshal(data, &nf); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if nf.Suite != "countnfa" {
		t.Errorf("suite = %q", nf.Suite)
	}
	// 5 workloads at workers=1 plus 5 at workers=2.
	if len(nf.Results) != 10 {
		t.Fatalf("got %d results, want 10", len(nf.Results))
	}
	for _, r := range nf.Results {
		if r.Ops <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", r.Name, r)
		}
		if r.Stats == nil || r.Stats.WordKeys <= 0 || r.Stats.UnionSamples <= 0 {
			t.Errorf("%s: missing engine stats: %+v", r.Name, r.Stats)
		}
	}

	data, err = os.ReadFile(churnPath)
	if err != nil {
		t.Fatal(err)
	}
	var cf benchFile
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if cf.Suite != "churn" {
		t.Errorf("suite = %q", cf.Suite)
	}
	// Every churn workload comes in an incremental/session row and a
	// rebuild/fresh row; the incremental side must win on allocations
	// for the small batch sizes, and on time too wherever the savings
	// are a structural share of the build — the PR's contract. The one
	// carve-out is ChurnPath's ns/op: the string pipeline's assembly
	// replays the whole NFA every build (symbol numbering follows
	// global fact positions, which any churn shifts), so the
	// incremental side only saves the key scan and the dirty join
	// lists — a real but single-digit-percent time edge that sits
	// inside run-to-run noise. There it must merely stay within 15% of
	// the rebuild; the allocation win stays strict.
	nsFails := checkChurnRows(t, cf.Results)
	if len(nsFails) > 0 {
		// The ns comparisons measure wall time and lose their margin
		// when the whole test suite runs in parallel on a loaded
		// machine; one re-measurement of just the churn suite on a miss
		// keeps the gate meaningful without making it flaky. The
		// allocation comparisons are load-immune and never retried.
		t.Logf("retrying churn suite after timing misses: %v", nsFails)
		retryPath := filepath.Join(dir, "bench_churn_retry.json")
		if err := runJSONBenchChurn(retryPath, cf.Epsilon, cf.Seed, 2, &out); err != nil {
			t.Fatal(err)
		}
		data, err = os.ReadFile(retryPath)
		if err != nil {
			t.Fatal(err)
		}
		var cf2 benchFile
		if err := json.Unmarshal(data, &cf2); err != nil {
			t.Fatalf("not valid JSON: %v", err)
		}
		for _, miss := range checkChurnRows(t, cf2.Results) {
			t.Error(miss)
		}
	}

	data, err = os.ReadFile(routerPath)
	if err != nil {
		t.Fatal(err)
	}
	var rf routerBenchFile
	if err := json.Unmarshal(data, &rf); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if rf.Suite != "router" {
		t.Errorf("suite = %q", rf.Suite)
	}
	// 3 workloads × 2 modes at workers=1 plus the same at workers=2.
	if len(rf.Results) != 12 {
		t.Fatalf("got %d results, want 12", len(rf.Results))
	}
	for _, r := range rf.Results {
		if r.Ops <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", r.Name, r)
		}
		switch {
		case strings.HasPrefix(r.Name, "ForcedFPRAS/"):
			if r.Exact || r.TrialsPerOp <= 0 {
				t.Errorf("%s: forced FPRAS row not sampled: %+v", r.Name, r)
			}
		case strings.HasPrefix(r.Name, "Routed/wide_fpras/"):
			if r.Exact || r.TrialsPerOp <= 0 {
				t.Errorf("%s: wide workload not routed to sampling: %+v", r.Name, r)
			}
		default: // Routed hierarchical and small-lineage rows.
			if !r.Exact || r.TrialsPerOp != 0 {
				t.Errorf("%s: expected an exact route with no trials: %+v", r.Name, r)
			}
		}
	}
	// The router's headline contract on the mixed workload.
	if rf.RoutedSpeedupGeomean < 2 {
		t.Errorf("routed speedup geomean %.2f, want ≥ 2", rf.RoutedSpeedupGeomean)
	}
	// Anytime stopping must never spend more trials than the forced
	// fixed schedule on the same workload.
	trials := make(map[string]int64, len(rf.Results))
	for _, r := range rf.Results {
		trials[fmt.Sprintf("%s@w%d", r.Name, r.Workers)] = r.TrialsPerOp
	}
	for key, routed := range trials {
		if !strings.HasPrefix(key, "Routed/wide_fpras/") {
			continue
		}
		forced, ok := trials[strings.Replace(key, "Routed/", "ForcedFPRAS/", 1)]
		if !ok {
			t.Errorf("%s has no forced counterpart", key)
			continue
		}
		if routed > forced {
			t.Errorf("%s executed %d trials, forced schedule only %d", key, routed, forced)
		}
	}

	data, err = os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	var sf shardBenchFile
	if err := json.Unmarshal(data, &sf); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if sf.Suite != "shard" {
		t.Errorf("suite = %q", sf.Suite)
	}
	// 2 workloads × (in-process baseline + worker counts 2 and 4).
	if len(sf.Results) != 6 {
		t.Fatalf("got %d shard results, want 6", len(sf.Results))
	}
	// The distributed contract, gated on the committed artifact itself:
	// every sharded row reproduces its workload's in-process baseline
	// estimate bit for bit.
	baselineBits := map[string]uint64{}
	for _, r := range sf.Results {
		if r.Workers == 0 {
			baselineBits[r.Name] = r.EstimateBits
		}
	}
	for _, r := range sf.Results {
		if r.Ops <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s@w%d: implausible measurement %+v", r.Name, r.Workers, r)
		}
		if r.Workers == 0 {
			if r.TrialsPerOp != 0 {
				t.Errorf("%s: baseline row reports dispatched trials: %+v", r.Name, r)
			}
			continue
		}
		if r.TrialsPerOp != int64(sf.Trials) {
			t.Errorf("%s@w%d: dispatched %d trials per op, want %d", r.Name, r.Workers, r.TrialsPerOp, sf.Trials)
		}
		base, ok := baselineBits[r.Name]
		if !ok {
			t.Errorf("%s@w%d has no baseline row", r.Name, r.Workers)
			continue
		}
		if r.EstimateBits != base {
			t.Errorf("%s@w%d: estimate bits %#x != baseline %#x: not bit-identical",
				r.Name, r.Workers, r.EstimateBits, base)
		}
	}
}

// TestMain lets a re-executed test binary serve as a shard worker
// subprocess for the shard suite (see shardproc.go).
func TestMain(m *testing.M) {
	maybeShardWorker()
	os.Exit(m.Run())
}

func TestRunRejectsBadNumericFlags(t *testing.T) {
	for _, c := range []struct {
		flag string
		args []string
	}{
		{"maxprocs", []string{"-maxprocs", "-1"}},
		{"workers", []string{"-workers", "0"}},
		{"shard-workers", []string{"-shard-workers", "0"}},
		{"shard-workers", []string{"-shard-workers", "-2"}},
	} {
		var out, errOut strings.Builder
		err := run(append(c.args, "-exp", "A1", "-quick"), &out, &errOut)
		var fe *flagcheck.Error
		if !errors.As(err, &fe) {
			t.Errorf("%v: run = %v, want *flagcheck.Error", c.args, err)
			continue
		}
		if fe.Flag != c.flag {
			t.Errorf("%v: rejected flag %q, want %q", c.args, fe.Flag, c.flag)
		}
	}
}

// TestRunCompareMaxRegressRemovedRow pins the gate fix: with
// -max-regress set, a baseline row that vanished must fail the run,
// not just print a REMOVED line — otherwise renaming a workload
// silently retires its regression gate.
func TestRunCompareMaxRegressRemovedRow(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	write := func(path, body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(oldPath, `{"suite":"router","results":[
		{"name":"Shared/row","workers":1,"ns_per_op":100,"allocs_per_op":10},
		{"name":"Old/only","workers":1,"ns_per_op":50,"allocs_per_op":5}]}`)
	write(newPath, `{"suite":"router","results":[
		{"name":"Shared/row","workers":1,"ns_per_op":100,"allocs_per_op":10}]}`)

	var out, errOut strings.Builder
	// Without a gate the removed row is report-only.
	if err := run([]string{"-compare", oldPath, newPath}, &out, &errOut); err != nil {
		t.Fatalf("ungated compare failed: %v", err)
	}
	// With the gate it must fail even though no matched row regressed.
	out.Reset()
	err := run([]string{"-compare", "-max-regress", "0.25", oldPath, newPath}, &out, &errOut)
	if err == nil {
		t.Fatal("removed baseline row passed under -max-regress")
	}
	if !strings.Contains(err.Error(), "baseline row(s) missing") {
		t.Errorf("unexpected error: %v", err)
	}
	if !strings.Contains(out.String(), "REMOVED (baseline only): Old/only (workers=1)") {
		t.Errorf("removed row not reported:\n%s", out.String())
	}
}

// checkChurnRows validates the churn suite's incremental-vs-rebuild
// contract: every incremental/session row must beat its rebuild/fresh
// counterpart on allocations (reported via t.Errorf — deterministic)
// for the small batch sizes, and on time (returned as retryable
// failures) — except ChurnPath's ns/op, which gets 15% slack: its
// assembly replays the whole NFA (symbol numbering follows global fact
// positions, which any churn shifts), so the incremental side only
// saves the key scan and the dirty join lists, a single-digit-percent
// edge inside run-to-run noise.
func checkChurnRows(t *testing.T, results []benchRecord) []string {
	t.Helper()
	rows := make(map[string]benchRecord, len(results))
	for _, r := range results {
		if r.Ops <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", r.Name, r)
		}
		rows[fmt.Sprintf("%s@w%d", r.Name, r.Workers)] = r
	}
	var nsFails []string
	for name, inc := range rows {
		base := strings.Replace(strings.Replace(name, "/incremental", "/rebuild", 1), "/session", "/fresh", 1)
		if base == name {
			continue
		}
		full, ok := rows[base]
		if !ok {
			t.Errorf("%s has no %s counterpart", name, base)
			continue
		}
		if !strings.Contains(name, "/n=1/") && !strings.Contains(name, "/n=10/") {
			continue
		}
		nsBound := full.NsPerOp
		if strings.HasPrefix(name, "ChurnPath/") {
			nsBound = full.NsPerOp + full.NsPerOp*15/100
		}
		if inc.NsPerOp >= nsBound {
			nsFails = append(nsFails, fmt.Sprintf("%s (%d ns/op) did not beat %s (bound %d ns/op)", name, inc.NsPerOp, base, nsBound))
		}
		if inc.AllocsPerOp >= full.AllocsPerOp {
			t.Errorf("%s (%d allocs/op) did not beat %s (%d allocs/op)", name, inc.AllocsPerOp, base, full.AllocsPerOp)
		}
	}
	return nsFails
}

// TestRunCompareAddedRemoved pins the explicit added/removed row
// reporting: rows without a baseline and baseline rows that vanished
// must both be called out, not silently skipped.
func TestRunCompareAddedRemoved(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	write := func(path, body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(oldPath, `{"suite":"churn","results":[
		{"name":"Shared/row","workers":1,"ns_per_op":100,"allocs_per_op":10},
		{"name":"Old/only","workers":1,"ns_per_op":50,"allocs_per_op":5}]}`)
	write(newPath, `{"suite":"churn","results":[
		{"name":"Shared/row","workers":1,"ns_per_op":110,"allocs_per_op":10},
		{"name":"New/only","workers":2,"ns_per_op":70,"allocs_per_op":7}]}`)

	var out, errOut strings.Builder
	if err := run([]string{"-compare", oldPath, newPath}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "ADDED (no baseline): New/only (workers=2): 70 ns/op, 7 allocs/op") {
		t.Errorf("added row not reported:\n%s", got)
	}
	if !strings.Contains(got, "REMOVED (baseline only): Old/only (workers=1)") {
		t.Errorf("removed row not reported:\n%s", got)
	}
	if !strings.Contains(got, "Shared/row") || !strings.Contains(got, "geomean") {
		t.Errorf("matched row or geomean missing:\n%s", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Error("bad flag accepted")
	}
}
