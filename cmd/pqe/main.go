// Command pqe evaluates the probability of a Boolean conjunctive query
// over a probabilistic database file.
//
// Usage:
//
//	pqe -query "R(x,y), S(y,z)" -db data.pdb [-eps 0.1] [-delta 0.1] [-seed 1]
//	    [-strategy auto] [-fpras] [-exact] [-debug-addr :8080] [-trace-json trace.json]
//	    [-workers-addr host1:9731,host2:9731]
//	pqe -shard-listen :9731            # run as a shard worker process
//
// The database file has one fact per line: "R(a, b) : 3/4" (fractions
// or exact decimals; omitted probability means 1). By default
// (-strategy auto) the tool routes with the full cost-based router:
// safe queries to an exact safe plan, provably small lineages to exact
// weighted model counting, and the rest of the tractable landscape to
// the combined-complexity FPRAS of van Bremen & Meel (PODS 2023) with
// anytime sequential stopping. -strategy legacy restores the two-way
// safe/FPRAS routing; -strategy force-<engine> pins one algorithm;
// -fpras forces the tree FPRAS; -exact adds a brute-force check (tiny
// databases only).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"

	"pqe"
	"pqe/internal/flagcheck"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pqe:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pqe", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		queryStr  = fs.String("query", "", "conjunctive query, e.g. 'R(x,y), S(y,z)'")
		dbPath    = fs.String("db", "", "probabilistic database file")
		eps       = fs.Float64("eps", 0.1, "FPRAS target relative error ε")
		delta     = fs.Float64("delta", 0, "anytime stopping failure target δ (0 = engine default ≈ 0.1)")
		seed      = fs.Int64("seed", 1, "random seed")
		strategy  = fs.String("strategy", "auto", "routing: auto, legacy, or force-{safeplan,obdd,lineage,nfta,nfa,montecarlo}")
		fpras     = fs.Bool("fpras", false, "force the FPRAS even for safe queries (alias for -strategy force-nfta)")
		exactBF   = fs.Bool("exact", false, "also run the brute-force oracle (|D| ≤ 30)")
		ur        = fs.Bool("ur", false, "compute uniform reliability (subinstance count) instead of probability")
		explain   = fs.Bool("explain", false, "print the evaluation plan instead of evaluating")
		sample    = fs.Int("sample", 0, "also draw N worlds conditioned on the query holding")
		trials      = fs.Int("trials", 5, "independent FPRAS estimates to take the median of")
		maxprocs    = fs.Int("maxprocs", runtime.NumCPU(), "workers of the counting engines' unified scheduler (1 = sequential; same answer either way)")
		workers     = fs.Int("workers", 0, "deprecated alias for -maxprocs")
		workersAddr = fs.String("workers-addr", "", "comma-separated shard worker addresses to distribute FPRAS trials across (bit-identical to a local run)")
		shardListen = fs.String("shard-listen", "", "run as a shard worker: serve trial ranges on this address (e.g. :9731) instead of evaluating")
		debugAddr   = fs.String("debug-addr", "", "serve live telemetry on this address (/metrics, /trace.json, /debug/pprof/)")
		traceJSON   = fs.String("trace-json", "", "write the stage trace, convergence records and metrics to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Reject out-of-range numerics instead of silently clamping: a
	// mistyped -trials 0 should fail loudly, not quietly run 5 trials.
	if err := flagcheck.Positive("trials", *trials); err != nil {
		return err
	}
	if err := flagcheck.Positive("maxprocs", *maxprocs); err != nil {
		return err
	}
	if err := flagcheck.NonNegative("workers", *workers); err != nil {
		return err
	}

	if *shardListen != "" {
		l, err := net.Listen("tcp", *shardListen)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "shard worker on %s\n", l.Addr())
		var tel *pqe.Telemetry
		if *debugAddr != "" {
			tel = pqe.NewTelemetry()
			bound, err := tel.ServeDebug(*debugAddr)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "debug server on http://%s/\n", bound)
		}
		return pqe.ServeShardWorker(l, *maxprocs, tel)
	}
	if *queryStr == "" || *dbPath == "" {
		fs.Usage()
		return fmt.Errorf("both -query and -db are required")
	}

	var tel *pqe.Telemetry
	if *debugAddr != "" || *traceJSON != "" {
		tel = pqe.NewTelemetry()
	}
	if *debugAddr != "" {
		bound, err := tel.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "debug server on http://%s/\n", bound)
	}
	if *traceJSON != "" {
		defer func() {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fmt.Fprintln(stderr, "pqe: trace-json:", err)
				return
			}
			defer f.Close()
			if err := tel.WriteTraceJSON(f); err != nil {
				fmt.Fprintln(stderr, "pqe: trace-json:", err)
			}
		}()
	}

	q, err := pqe.ParseQuery(*queryStr)
	if err != nil {
		return err
	}
	db, err := pqe.LoadDatabase(*dbPath)
	if err != nil {
		return err
	}

	sjf, bounded, safe, width := pqe.Classify(q)
	fmt.Fprintf(stdout, "query: %s\n", q)
	fmt.Fprintf(stdout, "facts: %d   self-join-free: %v   hypertree width: %d (bounded: %v)   safe: %v\n",
		db.Size(), sjf, width, bounded, safe)

	procs := *maxprocs
	if *workers > 0 {
		procs = *workers
	}
	// -strategy legacy restores the pre-router two-way routing; -fpras
	// maps to forcing the tree FPRAS, overriding -strategy.
	strat := *strategy
	if strat == "legacy" {
		strat = ""
	}
	if *fpras {
		strat = "force-nfta"
	}
	opts := &pqe.Options{Epsilon: *eps, Delta: *delta, Seed: *seed, Trials: *trials, Strategy: strat, MaxProcs: procs, Telemetry: tel}
	if *workersAddr != "" {
		addrs, err := flagcheck.NonEmptyList("workers-addr", *workersAddr)
		if err != nil {
			return err
		}
		pool, err := pqe.NewShardPool(addrs...)
		if err != nil {
			return err
		}
		defer pool.Close()
		fmt.Fprintf(stderr, "sharding trials across %d workers\n", pool.Workers())
		opts.Shards = pool
	}
	// One session for every mode: the decomposition and the automata are
	// built once and shared by the probability estimate and each
	// sampled world.
	est := pqe.NewEstimator(q, db, opts)

	if *explain {
		plan, err := est.Explain(nil)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, plan)
		return nil
	}

	if *ur {
		count, err := est.UniformReliability(nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "uniform reliability ≈ %s (FPRAS, ε=%.3g)\n", count.Text('g', 8), *eps)
		return nil
	}

	res, err := est.Probability(nil)
	if err != nil {
		return err
	}
	kind := fmt.Sprintf("approximate, ε=%.3g", *eps)
	if res.Exact {
		kind = "exact"
	}
	fmt.Fprintf(stdout, "Pr(Q) = %.8g   (%s; %s)\n", res.Probability, kind, res.Method)
	if res.Reason != "" {
		fmt.Fprintf(stdout, "route: %s\n", res.Reason)
	}

	if *exactBF {
		bf, err := pqe.BruteForceProbability(q, db)
		if err != nil {
			return err
		}
		f, _ := bf.Float64()
		fmt.Fprintf(stdout, "brute force: %.8g (= %s)\n", f, bf.RatString())
	}

	for i := 0; i < *sample; i++ {
		w, err := est.SampleWorld(&pqe.Options{Epsilon: *eps, Seed: *seed + int64(i), MaxProcs: procs, Telemetry: tel})
		if err != nil {
			return err
		}
		if w == nil {
			fmt.Fprintln(stdout, "no worlds: Pr(Q) = 0")
			break
		}
		fmt.Fprintf(stdout, "world %d: %v\n", i+1, w.Facts())
	}
	return nil
}
