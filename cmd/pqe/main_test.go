package main

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pqe"
	"pqe/internal/flagcheck"
)

func writeDB(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.pdb")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSafeQuery(t *testing.T) {
	db := writeDB(t, "R1(h,a) : 1/2\nR2(h,b) : 1/3\n")
	var out, errOut strings.Builder
	err := run([]string{"-query", "R1(x,y1), R2(x,y2)", "-db", db, "-exact"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "safe: true") {
		t.Errorf("missing classification: %s", s)
	}
	if !strings.Contains(s, "exact") {
		t.Errorf("safe query not exact: %s", s)
	}
	if !strings.Contains(s, "1/6") {
		t.Errorf("missing brute-force fraction: %s", s)
	}
}

func TestRunSmallLineageExact(t *testing.T) {
	// A tiny unsafe path query: under the default auto routing the
	// small-lineage rule answers it exactly.
	db := writeDB(t, "R1(a,b) : 1/2\nR2(b,c) : 1/2\nR3(c,d) : 1/2\n")
	var out, errOut strings.Builder
	err := run([]string{"-query", "R1(x1,x2), R2(x2,x3), R3(x3,x4)", "-db", db, "-eps", "0.1", "-seed", "3"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "exact") || !strings.Contains(s, "0.125") {
		t.Errorf("small-lineage query not answered exactly: %s", s)
	}
	if !strings.Contains(s, "route:") {
		t.Errorf("missing routing reason: %s", s)
	}
}

func TestRunFPRASQuery(t *testing.T) {
	db := writeDB(t, "R1(a,b) : 1/2\nR2(b,c) : 1/2\nR3(c,d) : 1/2\n")
	var out, errOut strings.Builder
	err := run([]string{"-query", "R1(x1,x2), R2(x2,x3), R3(x3,x4)", "-db", db,
		"-eps", "0.1", "-seed", "3", "-strategy", "legacy"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "approximate") {
		t.Errorf("unsafe query not approximate under legacy routing: %s", out.String())
	}
}

func TestRunForcedStrategy(t *testing.T) {
	db := writeDB(t, "R1(a,b) : 1/2\nR2(b,c) : 1/2\nR3(c,d) : 1/2\n")
	var out, errOut strings.Builder
	err := run([]string{"-query", "R1(x1,x2), R2(x2,x3), R3(x3,x4)", "-db", db,
		"-eps", "0.1", "-seed", "3", "-strategy", "force-nfa"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "path NFA") {
		t.Errorf("forced strategy not honored: %s", out.String())
	}
	if err := run([]string{"-query", "R1(x,y)", "-db", db, "-strategy", "force-warp"}, &out, &errOut); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunUniformReliability(t *testing.T) {
	db := writeDB(t, "R1(a,b) : 1/2\nR2(b,c) : 1/2\n")
	var out, errOut strings.Builder
	err := run([]string{"-query", "R1(x1,x2), R2(x2,x3)", "-db", db, "-ur"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "uniform reliability") {
		t.Errorf("missing UR output: %s", out.String())
	}
}

func TestRunMissingFlags(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(nil, &out, &errOut); err == nil {
		t.Error("missing flags accepted")
	}
}

func TestRunBadQuery(t *testing.T) {
	db := writeDB(t, "R(a) : 1/2\n")
	var out, errOut strings.Builder
	if err := run([]string{"-query", "R(", "-db", db}, &out, &errOut); err == nil {
		t.Error("bad query accepted")
	}
}

func TestRunMissingDBFile(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-query", "R(x)", "-db", "/nonexistent/file"}, &out, &errOut); err == nil {
		t.Error("missing database file accepted")
	}
}

func TestRunExplain(t *testing.T) {
	db := writeDB(t, "R1(a,b) : 1/2\nR2(b,c) : 2/3\nR3(c,d) : 1/2\n")
	var out, errOut strings.Builder
	err := run([]string{"-query", "R1(x1,x2), R2(x2,x3), R3(x3,x4)", "-db", db, "-explain",
		"-strategy", "force-nfta"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"route:", "decomposition:", "counted tree size"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explain output missing %q:\n%s", want, out.String())
		}
	}
	// Under the default auto routing this tiny instance explains to the
	// exact small-lineage route instead.
	out.Reset()
	err = run([]string{"-query", "R1(x1,x2), R2(x2,x3), R3(x3,x4)", "-db", db, "-explain"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"obdd", "reason:", "small lineage"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("auto explain missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSampleWorlds(t *testing.T) {
	db := writeDB(t, "R1(a,b) : 1/2\nR2(b,c) : 1/2\n")
	var out, errOut strings.Builder
	err := run([]string{"-query", "R1(x1,x2), R2(x2,x3)", "-db", db, "-sample", "3"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "world 1:") || !strings.Contains(out.String(), "world 3:") {
		t.Errorf("missing sampled worlds:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "R1(a,b)") {
		t.Errorf("world missing forced fact:\n%s", out.String())
	}
}

func TestRunRejectsBadNumericFlags(t *testing.T) {
	db := writeDB(t, "R1(a,b) : 1/2\n")
	base := []string{"-query", "R1(x,y)", "-db", db}
	cases := []struct {
		name string
		args []string
	}{
		{"trials", append([]string{"-trials", "0"}, base...)},
		{"trials", append([]string{"-trials", "-3"}, base...)},
		{"maxprocs", append([]string{"-maxprocs", "0"}, base...)},
		{"maxprocs", append([]string{"-maxprocs", "-1"}, base...)},
		{"workers", append([]string{"-workers", "-2"}, base...)},
	}
	for _, c := range cases {
		var out, errOut strings.Builder
		err := run(c.args, &out, &errOut)
		var fe *flagcheck.Error
		if !errors.As(err, &fe) {
			t.Errorf("%v: run = %v, want *flagcheck.Error", c.args[:2], err)
			continue
		}
		if fe.Flag != c.name {
			t.Errorf("%v: rejected flag %q, want %q", c.args[:2], fe.Flag, c.name)
		}
	}
}

func TestRunRejectsBadWorkersAddr(t *testing.T) {
	db := writeDB(t, "R1(a,b) : 1/2\n")
	var out, errOut strings.Builder
	err := run([]string{"-query", "R1(x,y)", "-db", db, "-workers-addr", "a:1,,b:2"}, &out, &errOut)
	var fe *flagcheck.Error
	if !errors.As(err, &fe) || fe.Flag != "workers-addr" {
		t.Errorf("run = %v, want *flagcheck.Error for -workers-addr", err)
	}
}

// TestRunSharded drives the two-terminal workflow in-process: a shard
// worker via pqe.ServeShardWorker plus a -workers-addr run, and checks
// the printed estimate matches the local run byte for byte.
func TestRunSharded(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go pqe.ServeShardWorker(l, 2, nil)

	db := writeDB(t, "R1(a,b) : 1/2\nR1(a,c) : 1/3\nR2(b,d) : 2/3\nR2(c,d) : 1/2\nR3(d,e) : 3/4\n")
	args := []string{"-query", "R1(x1,x2), R2(x2,x3), R3(x3,x4)", "-db", db,
		"-eps", "0.2", "-seed", "7", "-strategy", "force-nfta"}
	var local, sharded, errOut strings.Builder
	if err := run(args, &local, &errOut); err != nil {
		t.Fatalf("local run: %v", err)
	}
	if err := run(append(args, "-workers-addr", l.Addr().String()), &sharded, &errOut); err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if local.String() != sharded.String() {
		t.Errorf("sharded output differs:\nlocal:\n%s\nsharded:\n%s", local.String(), sharded.String())
	}
	if !strings.Contains(local.String(), "Pr(Q)") {
		t.Errorf("missing estimate: %s", local.String())
	}
}
