package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeWorkload runs the full in-process smoke lane: scripted
// one-shot, streamed, burst and delta traffic against a loopback
// listener, then the /metrics scrape with the zero-shed assertion.
// This is exactly what `make serve-smoke` runs in CI.
func TestSmokeWorkload(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.prom")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-smoke", "-smoke-out", out}, &stdout, &stderr); err != nil {
		t.Fatalf("run -smoke: %v\nstderr:\n%s", err, stderr.String())
	}
	metrics, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"pqed_requests_total", "pqed_inflight", "pqed_queue_wait_seconds",
		"pqed_requests_shed_total", "pqed_session_hits_total",
	} {
		if !bytes.Contains(metrics, []byte(family)) {
			t.Errorf("metrics artifact missing %s", family)
		}
	}
	if !strings.Contains(stderr.String(), "smoke: ok") {
		t.Errorf("smoke did not report ok:\n%s", stderr.String())
	}
}

// TestSmokeToStdout: without -smoke-out the scrape lands on stdout.
func TestSmokeToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-smoke"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -smoke: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "pqed_requests_total") {
		t.Error("stdout scrape missing pqed_requests_total")
	}
}

func TestFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("run without -db or -smoke should fail")
	}
	if err := run([]string{"-db", "/does/not/exist.pdb", "-smoke"}, &stdout, &stderr); err == nil {
		t.Error("run with a missing database file should fail")
	}
	if err := run([]string{"-bogus-flag"}, &stdout, &stderr); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-smoke", "-log-format", "xml"}, &stdout, &stderr); err == nil {
		t.Error("unknown -log-format should fail")
	}
}

// TestSmokeJSONLogs: with -log-format json the access log on stderr is
// line-delimited JSON whose records carry the correlation ID, route and
// status of every smoke request.
func TestSmokeJSONLogs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-smoke", "-log-format", "json", "-flight-recorder-size", "32"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -smoke: %v\nstderr:\n%s", err, stderr.String())
	}
	var access int
	for _, line := range strings.Split(stderr.String(), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // smoke's own progress lines
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSON log line %q: %v", line, err)
		}
		if m["msg"] != "request" {
			continue
		}
		access++
		if m["request_id"] == "" || m["route"] == "" || m["status"] == nil {
			t.Errorf("access line underattributed: %v", m)
		}
	}
	// The scripted workload issues a dozen-plus requests; every one must
	// have produced exactly one access line.
	if access < 12 {
		t.Errorf("only %d JSON access lines for the smoke workload", access)
	}
}

// TestSmokeWithDatabaseFile: -db name=path loads and serves a real
// database file through the same smoke workload's server (the workload
// itself runs against "default", which -db also provides here).
func TestSmokeWithDatabaseFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facts.pdb")
	db := demoDatabase()
	if err := os.WriteFile(path, []byte(db.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-db", path, "-smoke"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -db -smoke: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "serving \"default\"") {
		t.Errorf("database file was not loaded:\n%s", stderr.String())
	}
}
