// Command pqed serves the pqe engines over HTTP/JSON: estimate
// endpoints (one-shot and SSE-streamed anytime convergence), fact-level
// deltas with optimistic version checks, and the combined service +
// engine metrics, all against a shared worker budget with 429
// backpressure.
//
// Usage:
//
//	pqed -addr :8080 -db data.pdb [-db name=other.pdb ...]
//	     [-budget N] [-max-sessions N] [-queue-wait 2s] [-timeout 30s]
//	     [-drain-timeout 10s] [-log-format text|json]
//	     [-flight-recorder-size N] [-shard-workers host1:9731,host2:9731]
//	pqed -smoke [-smoke-out metrics.prom]
//
// Databases are the same one-fact-per-line files cmd/pqe reads; a bare
// path serves as "default", "name=path" under that name. The server
// drains gracefully on SIGINT/SIGTERM: in-flight requests finish (up
// to -drain-timeout), new ones get 503.
//
// Structured access logs go to stderr in the chosen -log-format; each
// line carries the request's correlation ID (X-Request-Id, generated
// when absent), route, strategy, database version, outcome and phase
// timings. The flight recorder keeps the last -flight-recorder-size
// completed requests browsable at /debug/requests.
//
// -smoke runs a self-contained smoke workload against an in-process
// listener — a scripted mix of one-shot, streamed and delta requests —
// then scrapes /metrics, verifies nothing was shed at low load, writes
// the scrape to -smoke-out (default stdout) and exits non-zero on any
// failure. CI uses it as the serve-smoke lane.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/big"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pqe"
	"pqe/internal/flagcheck"
	"pqe/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pqed:", err)
		os.Exit(1)
	}
}

// dbFlags collects repeated -db flags ("path" or "name=path").
type dbFlags []string

func (d *dbFlags) String() string     { return strings.Join(*d, ",") }
func (d *dbFlags) Set(v string) error { *d = append(*d, v); return nil }

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pqed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var dbs dbFlags
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		budget       = fs.Int("budget", runtime.NumCPU(), "shared worker-token budget across concurrent requests")
		maxSessions  = fs.Int("max-sessions", 64, "estimator session LRU capacity")
		queueWait    = fs.Duration("queue-wait", 2*time.Second, "max admission wait before shedding with 429")
		timeout      = fs.Duration("timeout", 30*time.Second, "default per-request deadline (requests may set timeout_ms)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget for in-flight requests")
		logFormat    = fs.String("log-format", "text", "structured access-log format on stderr: text or json")
		recorderSize = fs.Int("flight-recorder-size", 256, "completed requests retained for /debug/requests")
		smoke        = fs.Bool("smoke", false, "run the in-process smoke workload and exit")
		smokeOut     = fs.String("smoke-out", "", "write the smoke /metrics scrape to this file (default stdout)")
		shardWorkers = fs.String("shard-workers", "", "comma-separated shard worker addresses (pqe -shard-listen) to distribute FPRAS trials across")
	)
	fs.Var(&dbs, "db", "database file to serve: 'path' (as \"default\") or 'name=path'; repeatable")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(stderr, nil))
	default:
		return fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat)
	}

	var pool *pqe.ShardPool
	if *shardWorkers != "" {
		addrs, err := flagcheck.NonEmptyList("shard-workers", *shardWorkers)
		if err != nil {
			return err
		}
		if pool, err = pqe.NewShardPool(addrs...); err != nil {
			return err
		}
		defer pool.Close()
		fmt.Fprintf(stderr, "sharding trials across %d workers\n", pool.Workers())
	}

	srv := serve.NewServer(serve.Config{
		Budget:             *budget,
		MaxSessions:        *maxSessions,
		QueueWait:          *queueWait,
		DefaultTimeout:     *timeout,
		Logger:             logger,
		FlightRecorderSize: *recorderSize,
		Shards:             pool,
	})
	if len(dbs) == 0 {
		if !*smoke {
			fs.Usage()
			return fmt.Errorf("at least one -db is required (or -smoke)")
		}
		srv.AddDatabase("default", demoDatabase())
	}
	for _, spec := range dbs {
		name, path := "default", spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		db, err := pqe.LoadDatabase(path)
		if err != nil {
			return fmt.Errorf("loading %q: %w", spec, err)
		}
		srv.AddDatabase(name, db)
		fmt.Fprintf(stderr, "serving %q: %d facts (version %d)\n", name, db.Size(), db.Version())
	}

	if *smoke {
		return runSmoke(srv, stdout, stderr, *smokeOut)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(stderr, "pqed listening on %s\n", *addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "pqed: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop admitting work, let in-flight requests finish, then close
	// the listener and connections.
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(stderr, "pqed: drain incomplete: %v\n", err)
	}
	return hs.Shutdown(dctx)
}

// demoDatabase is the built-in instance the smoke workload runs
// against: a 3-step path shape (unsafe, so estimates exercise the
// FPRAS) with enough facts to take a few trial batches.
func demoDatabase() *pqe.Database {
	d := pqe.NewDatabase()
	add := func(rel, a, b string, num, den int64) {
		if err := d.AddFact(rel, big.NewRat(num, den), a, b); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 4; i++ {
		a := fmt.Sprintf("a%d", i)
		b := fmt.Sprintf("b%d", i%2)
		c := fmt.Sprintf("c%d", i%3)
		add("R1", a, b, 1, 2)
		add("R2", b, c, 2, 3)
		add("R3", c, "t", 3, 4)
	}
	return d
}
