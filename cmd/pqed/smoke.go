package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"pqe/internal/serve"
)

// runSmoke drives a scripted workload through a real loopback listener
// and asserts the service behaved: every request succeeded, one-shot
// and streamed estimates agree bit-for-bit, the delta bumped the
// version, and — at this low offered load — nothing was shed. It then
// scrapes /metrics, checks the pqed_* families are present, and writes
// the scrape to outPath (stdout when empty) for the CI artifact.
func runSmoke(srv *serve.Server, stdout, stderr io.Writer, outPath string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(stderr, "smoke: serving on %s\n", base)

	query := "R1(x,y), R2(y,z), R3(z,w)"
	body := func(seed int64) string {
		return fmt.Sprintf(`{"query":%q,"database":"default","options":{"epsilon":0.3,"trials":5,"seed":%d,"max_procs":2,"timeout_ms":30000}}`, query, seed)
	}

	// Phase 1: sequential one-shot estimates (a session miss then hits).
	var oneShot string
	for i := 0; i < 3; i++ {
		resp, err := postJSON(base+"/v1/estimate", body(7))
		if err != nil {
			return fmt.Errorf("estimate %d: %w", i, err)
		}
		p := fmt.Sprint(resp["probability"])
		if oneShot == "" {
			oneShot = p
		} else if p != oneShot {
			return fmt.Errorf("estimate %d: probability %s != first %s (determinism)", i, p, oneShot)
		}
	}
	fmt.Fprintf(stderr, "smoke: one-shot probability %s\n", oneShot)

	// Phase 2: streamed estimate must match the one-shot bit-for-bit.
	streamed, trials, err := streamEstimate(base+"/v1/estimate/stream", body(7))
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if streamed != oneShot {
		return fmt.Errorf("streamed probability %s != one-shot %s", streamed, oneShot)
	}
	fmt.Fprintf(stderr, "smoke: streamed matches (%d trial events)\n", trials)

	// Phase 3: a small concurrent burst, all with the same seed — every
	// response must carry the identical estimate.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := postJSON(base+"/v1/estimate", body(7))
			if err != nil {
				errs <- err
				return
			}
			if p := fmt.Sprint(resp["probability"]); p != oneShot {
				errs <- fmt.Errorf("concurrent estimate %s != %s", p, oneShot)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return fmt.Errorf("burst: %w", err)
	}

	// Phase 4: delta with version check, then re-estimate (new value may
	// differ — the database changed — but must again be deterministic).
	dbsResp, err := getJSON(base + "/v1/databases")
	if err != nil {
		return fmt.Errorf("databases: %w", err)
	}
	version := currentVersion(dbsResp)
	deltaBody := fmt.Sprintf(`{"database":"default","base_version":%d,"ops":[{"op":"insert","relation":"R1","args":["a9","b0"],"prob":"1/3"}]}`, version)
	if _, err := postJSON(base+"/v1/delta", deltaBody); err != nil {
		return fmt.Errorf("delta: %w", err)
	}
	after1, err := postJSON(base+"/v1/estimate", body(7))
	if err != nil {
		return fmt.Errorf("post-delta estimate: %w", err)
	}
	after2, err := postJSON(base+"/v1/estimate", body(7))
	if err != nil {
		return fmt.Errorf("post-delta estimate: %w", err)
	}
	if fmt.Sprint(after1["probability"]) != fmt.Sprint(after2["probability"]) {
		return fmt.Errorf("post-delta estimates disagree")
	}
	// A stale delta must 409.
	resp, err := http.Post(base+"/v1/delta", "application/json", strings.NewReader(deltaBody))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("stale delta: status %d, want 409", resp.StatusCode)
	}
	fmt.Fprintln(stderr, "smoke: delta + stale-version check ok")

	// Phase 5: scrape and verify metrics — the flat families, the
	// outcome-labeled request counter, the phase histograms, and the
	// runtime-health gauges.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, family := range []string{
		"pqed_requests_total", "pqed_inflight", "pqed_queue_wait_seconds",
		"pqed_request_seconds", "pqed_session_hits_total", "pqed_session_misses_total",
		"pqed_requests_shed_total", "pqed_phase_seconds", "go_goroutines",
	} {
		if !bytes.Contains(metrics, []byte(family)) {
			return fmt.Errorf("/metrics is missing %s", family)
		}
	}
	// Labels render sorted by name, so the successful one-shot estimates
	// appear as this exact series.
	if !bytes.Contains(metrics, []byte(`pqed_requests_total{outcome="200",route="estimate"}`)) {
		return fmt.Errorf(`/metrics is missing the labeled pqed_requests_total{outcome="200",route="estimate"} series`)
	}
	if shed := metricValue(metrics, "pqed_requests_shed_total"); shed != 0 {
		return fmt.Errorf("pqed_requests_shed_total = %g at low load, want 0", shed)
	}

	// Phase 6: the flight recorder attributes every request — each
	// completed record carries a correlation ID and a phase breakdown
	// whose sum stays within the request's wall time (and close to it:
	// the tracked phases cover all the real work).
	if err := checkFlightRecorder(base); err != nil {
		return err
	}
	fmt.Fprintln(stderr, "smoke: flight recorder attribution ok")

	out := io.Writer(stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if _, err := out.Write(metrics); err != nil {
		return err
	}
	// Stop the runtime collector and settle in-flight accounting so
	// repeated in-process smokes (the tests) don't pile up pollers.
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("post-smoke drain: %w", err)
	}
	fmt.Fprintln(stderr, "smoke: ok")
	return nil
}

// checkFlightRecorder scrapes /debug/requests (both renderings) and
// asserts post-hoc attributability: every completed record has an ID,
// a route and an outcome, and on successful estimates the phase sum is
// positive, never exceeds wall time, and leaves only a small
// unattributed gap (max of 25% of wall and 50ms of slack).
func checkFlightRecorder(base string) error {
	snap, err := getJSON(base + "/debug/requests")
	if err != nil {
		return fmt.Errorf("/debug/requests: %w", err)
	}
	completed, _ := snap["completed"].([]any)
	if len(completed) == 0 {
		return fmt.Errorf("/debug/requests: no completed records after the workload")
	}
	var checkedPhases int
	for _, it := range completed {
		rec, _ := it.(map[string]any)
		id, _ := rec["id"].(string)
		route, _ := rec["route"].(string)
		outcome, _ := rec["outcome"].(float64)
		if id == "" || route == "" || outcome == 0 {
			return fmt.Errorf("/debug/requests: unattributable record %v", rec)
		}
		if route != "estimate" || outcome != 200 {
			continue
		}
		wall, _ := rec["wall_seconds"].(float64)
		phases, _ := rec["phases"].(map[string]any)
		var sum float64
		for _, v := range phases {
			sum += v.(float64)
		}
		if sum <= 0 {
			return fmt.Errorf("/debug/requests: record %s has no phase time: %v", id, rec)
		}
		if sum > wall+0.005 {
			return fmt.Errorf("/debug/requests: record %s phase sum %.6fs exceeds wall %.6fs", id, sum, wall)
		}
		slack := 0.25 * wall
		if slack < 0.050 {
			slack = 0.050
		}
		if wall-sum > slack {
			return fmt.Errorf("/debug/requests: record %s leaves %.6fs of %.6fs unattributed (allowed %.6fs)",
				id, wall-sum, wall, slack)
		}
		checkedPhases++
	}
	if checkedPhases == 0 {
		return fmt.Errorf("/debug/requests: no successful estimate records to check")
	}
	// The text rendering serves the same data as a table.
	resp, err := http.Get(base + "/debug/requests?format=text")
	if err != nil {
		return err
	}
	table, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, needle := range []string{"ID", "ROUTE", "CODE", "total_completed"} {
		if !bytes.Contains(table, []byte(needle)) {
			return fmt.Errorf("/debug/requests?format=text missing %q:\n%s", needle, table)
		}
	}
	return nil
}

func postJSON(url, body string) (map[string]any, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return m, nil
}

func getJSON(url string) (map[string]any, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}

// streamEstimate consumes an SSE response and returns the final
// result's probability (as its JSON literal) plus the trial-event
// count.
func streamEstimate(url, body string) (probability string, trials int, err error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return "", 0, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "trial":
				trials++
			case "error":
				return "", trials, fmt.Errorf("stream error: %s", data)
			case "result":
				var m map[string]any
				if err := json.Unmarshal([]byte(data), &m); err != nil {
					return "", trials, err
				}
				return fmt.Sprint(m["probability"]), trials, nil
			}
		}
	}
	return "", trials, fmt.Errorf("stream ended without a result event (%v)", sc.Err())
}

// currentVersion digs the "default" database's version out of the
// /v1/databases response.
func currentVersion(resp map[string]any) uint64 {
	list, _ := resp["databases"].([]any)
	for _, it := range list {
		m, _ := it.(map[string]any)
		if m["name"] == "default" {
			v, _ := m["version"].(float64)
			return uint64(v)
		}
	}
	return 0
}

// metricValue extracts a metric's value from a Prometheus text scrape
// (0 when absent).
func metricValue(metrics []byte, name string) float64 {
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}
