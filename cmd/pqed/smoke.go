package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"

	"pqe/internal/serve"
)

// runSmoke drives a scripted workload through a real loopback listener
// and asserts the service behaved: every request succeeded, one-shot
// and streamed estimates agree bit-for-bit, the delta bumped the
// version, and — at this low offered load — nothing was shed. It then
// scrapes /metrics, checks the pqed_* families are present, and writes
// the scrape to outPath (stdout when empty) for the CI artifact.
func runSmoke(srv *serve.Server, stdout, stderr io.Writer, outPath string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(stderr, "smoke: serving on %s\n", base)

	query := "R1(x,y), R2(y,z), R3(z,w)"
	body := func(seed int64) string {
		return fmt.Sprintf(`{"query":%q,"database":"default","options":{"epsilon":0.3,"trials":5,"seed":%d,"max_procs":2,"timeout_ms":30000}}`, query, seed)
	}

	// Phase 1: sequential one-shot estimates (a session miss then hits).
	var oneShot string
	for i := 0; i < 3; i++ {
		resp, err := postJSON(base+"/v1/estimate", body(7))
		if err != nil {
			return fmt.Errorf("estimate %d: %w", i, err)
		}
		p := fmt.Sprint(resp["probability"])
		if oneShot == "" {
			oneShot = p
		} else if p != oneShot {
			return fmt.Errorf("estimate %d: probability %s != first %s (determinism)", i, p, oneShot)
		}
	}
	fmt.Fprintf(stderr, "smoke: one-shot probability %s\n", oneShot)

	// Phase 2: streamed estimate must match the one-shot bit-for-bit.
	streamed, trials, err := streamEstimate(base+"/v1/estimate/stream", body(7))
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if streamed != oneShot {
		return fmt.Errorf("streamed probability %s != one-shot %s", streamed, oneShot)
	}
	fmt.Fprintf(stderr, "smoke: streamed matches (%d trial events)\n", trials)

	// Phase 3: a small concurrent burst, all with the same seed — every
	// response must carry the identical estimate.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := postJSON(base+"/v1/estimate", body(7))
			if err != nil {
				errs <- err
				return
			}
			if p := fmt.Sprint(resp["probability"]); p != oneShot {
				errs <- fmt.Errorf("concurrent estimate %s != %s", p, oneShot)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return fmt.Errorf("burst: %w", err)
	}

	// Phase 4: delta with version check, then re-estimate (new value may
	// differ — the database changed — but must again be deterministic).
	dbsResp, err := getJSON(base + "/v1/databases")
	if err != nil {
		return fmt.Errorf("databases: %w", err)
	}
	version := currentVersion(dbsResp)
	deltaBody := fmt.Sprintf(`{"database":"default","base_version":%d,"ops":[{"op":"insert","relation":"R1","args":["a9","b0"],"prob":"1/3"}]}`, version)
	if _, err := postJSON(base+"/v1/delta", deltaBody); err != nil {
		return fmt.Errorf("delta: %w", err)
	}
	after1, err := postJSON(base+"/v1/estimate", body(7))
	if err != nil {
		return fmt.Errorf("post-delta estimate: %w", err)
	}
	after2, err := postJSON(base+"/v1/estimate", body(7))
	if err != nil {
		return fmt.Errorf("post-delta estimate: %w", err)
	}
	if fmt.Sprint(after1["probability"]) != fmt.Sprint(after2["probability"]) {
		return fmt.Errorf("post-delta estimates disagree")
	}
	// A stale delta must 409.
	resp, err := http.Post(base+"/v1/delta", "application/json", strings.NewReader(deltaBody))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("stale delta: status %d, want 409", resp.StatusCode)
	}
	fmt.Fprintln(stderr, "smoke: delta + stale-version check ok")

	// Phase 5: scrape and verify metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, family := range []string{"pqed_requests_total", "pqed_inflight", "pqed_queue_wait_seconds", "pqed_request_seconds", "pqed_session_hits_total", "pqed_session_misses_total", "pqed_requests_shed_total"} {
		if !bytes.Contains(metrics, []byte(family)) {
			return fmt.Errorf("/metrics is missing %s", family)
		}
	}
	if shed := metricValue(metrics, "pqed_requests_shed_total"); shed != 0 {
		return fmt.Errorf("pqed_requests_shed_total = %g at low load, want 0", shed)
	}

	out := io.Writer(stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if _, err := out.Write(metrics); err != nil {
		return err
	}
	fmt.Fprintln(stderr, "smoke: ok")
	return nil
}

func postJSON(url, body string) (map[string]any, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return m, nil
}

func getJSON(url string) (map[string]any, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}

// streamEstimate consumes an SSE response and returns the final
// result's probability (as its JSON literal) plus the trial-event
// count.
func streamEstimate(url, body string) (probability string, trials int, err error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return "", 0, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "trial":
				trials++
			case "error":
				return "", trials, fmt.Errorf("stream error: %s", data)
			case "result":
				var m map[string]any
				if err := json.Unmarshal([]byte(data), &m); err != nil {
					return "", trials, err
				}
				return fmt.Sprint(m["probability"]), trials, nil
			}
		}
	}
	return "", trials, fmt.Errorf("stream ended without a result event (%v)", sc.Err())
}

// currentVersion digs the "default" database's version out of the
// /v1/databases response.
func currentVersion(resp map[string]any) uint64 {
	list, _ := resp["databases"].([]any)
	for _, it := range list {
		m, _ := it.(map[string]any)
		if m["name"] == "default" {
			v, _ := m["version"].(float64)
			return uint64(v)
		}
	}
	return 0
}

// metricValue extracts a metric's value from a Prometheus text scrape
// (0 when absent).
func metricValue(metrics []byte, name string) float64 {
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}
