package main

import (
	"strings"
	"testing"

	"pqe/internal/pdb"
	"pqe/internal/testkit"
)

func TestRunPathFamily(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-family", "path", "-len", "2", "-chains", "2", "-noise", "1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	h, err := pdb.ParseString(out.String())
	if err != nil {
		t.Fatalf("output does not parse back: %v", err)
	}
	if h.Size() == 0 {
		t.Error("empty workload")
	}
	if !strings.Contains(errOut.String(), "query: R1(x1,x2), R2(x2,x3)") {
		t.Errorf("stderr missing query: %s", errOut.String())
	}
}

func TestRunLayeredFamily(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-family", "layered", "-len", "2", "-width", "2", "-model", "rational"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	h, err := pdb.ParseString(out.String())
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() != 8 { // width² × len
		t.Errorf("layered size = %d, want 8", h.Size())
	}
}

func TestRunRandomFamily(t *testing.T) {
	var out, errOut strings.Builder
	err := run([]string{"-family", "random", "-query", "R(x,y), S(y)", "-facts", "3", "-model", "high"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.ParseString(out.String()); err != nil {
		t.Fatal(err)
	}
}

// The testkit family must emit exactly the instance the test suite
// generates for the same (seed, case) pair — that identity is what
// makes a printed repro command trustworthy.
func TestRunTestkitFamily(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-family", "testkit", "-seed", "3", "-case", "7"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	c := testkit.NewCase(3, 7)
	if got, want := out.String(), pdb.FormatString(c.H); got != want {
		t.Errorf("pqegen output diverges from testkit.NewCase:\n%s\nvs\n%s", got, want)
	}
	if !strings.Contains(errOut.String(), "query: "+c.Query.String()) {
		t.Errorf("stderr missing query: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "shape: "+c.Shape) {
		t.Errorf("stderr missing shape: %s", errOut.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-family", "random"}, &out, &errOut); err == nil {
		t.Error("random without query accepted")
	}
	if err := run([]string{"-family", "bogus"}, &out, &errOut); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run([]string{"-model", "bogus"}, &out, &errOut); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run([]string{"-family", "random", "-query", "R("}, &out, &errOut); err == nil {
		t.Error("bad query accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b, errOut strings.Builder
	if err := run([]string{"-seed", "9"}, &a, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "9"}, &b, &errOut); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}
