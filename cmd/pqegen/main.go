// Command pqegen generates synthetic probabilistic-database workloads
// for the query families the paper studies, in the textual format
// cmd/pqe reads.
//
// Usage:
//
//	pqegen -family path -len 3 -chains 4 -noise 2 -model rational > data.pdb
//	pqegen -family layered -len 4 -width 3 -model half
//	pqegen -family random -query "R(x,y), S(y,z)" -facts 10 -domain 5
//	pqegen -family testkit -seed 1 -case 17
//
// It also prints the matching query on stderr. The testkit family
// regenerates a differential-suite case verbatim from the (seed, case)
// pair a testkit failure report prints, so a failing instance can be
// inspected and replayed outside the test harness.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pqe/internal/cq"
	"pqe/internal/gen"
	"pqe/internal/pdb"
	"pqe/internal/testkit"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pqegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pqegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		family   = fs.String("family", "path", "workload family: path | layered | random | testkit")
		length   = fs.Int("len", 3, "path query length (path, layered)")
		chains   = fs.Int("chains", 4, "number of satisfying chains (path)")
		noise    = fs.Int("noise", 2, "noise edges per relation (path)")
		width    = fs.Int("width", 3, "layer width (layered)")
		queryStr = fs.String("query", "", "query for -family random")
		facts    = fs.Int("facts", 8, "facts per relation (random)")
		domain   = fs.Int("domain", 5, "constant pool size (random)")
		model    = fs.String("model", "half", "probability model: half | rational | high")
		seed     = fs.Int64("seed", 1, "random seed")
		caseIdx  = fs.Int("case", 0, "case index (testkit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	pm, err := gen.ParseModel(*model)
	if err != nil {
		return err
	}

	var (
		h *pdb.Probabilistic
		q *cq.Query
	)
	switch *family {
	case "path":
		q = cq.PathQuery("R", *length)
		h = gen.SparsePathInstance(q, *chains, *noise, pm, *seed)
	case "layered":
		q = cq.PathQuery("R", *length)
		h = gen.LayeredPathInstance(q, *width, pm, *seed)
	case "random":
		if *queryStr == "" {
			return fmt.Errorf("-family random needs -query")
		}
		q, err = cq.Parse(*queryStr)
		if err != nil {
			return err
		}
		h = gen.Instance(q, gen.Config{
			FactsPerRelation: *facts,
			DomainSize:       *domain,
			Model:            pm,
			Seed:             *seed,
		})
	case "testkit":
		c := testkit.NewCase(*seed, *caseIdx)
		q, h = c.Query, c.H
		fmt.Fprintf(stderr, "shape: %s\nmodel: %s\n", c.Shape, c.Model)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}

	if err := pdb.Format(stdout, h); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "query: %s\n", q)
	fmt.Fprintf(stderr, "facts: %d\n", h.Size())
	return nil
}
