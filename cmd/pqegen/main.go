// Command pqegen generates synthetic probabilistic-database workloads
// for the query families the paper studies, in the textual format
// cmd/pqe reads.
//
// Usage:
//
//	pqegen -family path -len 3 -chains 4 -noise 2 -model rational > data.pdb
//	pqegen -family layered -len 4 -width 3 -model half
//	pqegen -family random -query "R(x,y), S(y,z)" -facts 10 -domain 5
//
// It also prints the matching query on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pqe/internal/cq"
	"pqe/internal/gen"
	"pqe/internal/pdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pqegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pqegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		family   = fs.String("family", "path", "workload family: path | layered | random")
		length   = fs.Int("len", 3, "path query length (path, layered)")
		chains   = fs.Int("chains", 4, "number of satisfying chains (path)")
		noise    = fs.Int("noise", 2, "noise edges per relation (path)")
		width    = fs.Int("width", 3, "layer width (layered)")
		queryStr = fs.String("query", "", "query for -family random")
		facts    = fs.Int("facts", 8, "facts per relation (random)")
		domain   = fs.Int("domain", 5, "constant pool size (random)")
		model    = fs.String("model", "half", "probability model: half | rational | high")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pm gen.ProbModel
	switch *model {
	case "half":
		pm = gen.ProbHalf
	case "rational":
		pm = gen.ProbRandomRational
	case "high":
		pm = gen.ProbHigh
	default:
		return fmt.Errorf("unknown probability model %q", *model)
	}

	var (
		h *pdb.Probabilistic
		q *cq.Query
	)
	switch *family {
	case "path":
		q = cq.PathQuery("R", *length)
		h = gen.SparsePathInstance(q, *chains, *noise, pm, *seed)
	case "layered":
		q = cq.PathQuery("R", *length)
		h = gen.LayeredPathInstance(q, *width, pm, *seed)
	case "random":
		if *queryStr == "" {
			return fmt.Errorf("-family random needs -query")
		}
		var err error
		q, err = cq.Parse(*queryStr)
		if err != nil {
			return err
		}
		h = gen.Instance(q, gen.Config{
			FactsPerRelation: *facts,
			DomainSize:       *domain,
			Model:            pm,
			Seed:             *seed,
		})
	default:
		return fmt.Errorf("unknown family %q", *family)
	}

	if err := pdb.Format(stdout, h); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "query: %s\n", q)
	fmt.Fprintf(stderr, "facts: %d\n", h.Size())
	return nil
}
