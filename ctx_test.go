package pqe

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestCtxAlreadyCancelled: an Options.Ctx that is cancelled before the
// call starts makes every estimate entry point return ctx.Err() without
// doing any sampling work.
func TestCtxAlreadyCancelled(t *testing.T) {
	q := PathQuery("R", 3)
	d := smallPathDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := &Options{Epsilon: 0.2, Trials: 3, Seed: 7, Ctx: ctx}

	if _, err := Estimate(q, d, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("Estimate: err = %v, want context.Canceled", err)
	}
	if _, err := UniformReliability(q, d, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("UniformReliability: err = %v, want context.Canceled", err)
	}
	est := NewEstimator(q, d, opts)
	if _, err := est.Estimate(nil); !errors.Is(err, context.Canceled) {
		t.Errorf("Estimator.Estimate: err = %v, want context.Canceled", err)
	}
	if _, err := est.Probability(nil); !errors.Is(err, context.Canceled) {
		t.Errorf("Estimator.Probability: err = %v, want context.Canceled", err)
	}
}

// TestCtxCancelMidSampling: a context cancelled from inside the
// sampling loop (here: the first per-trial convergence callback) stops
// the call at the next trial-batch boundary — the engine never starts
// the remaining batches — and the call reports ctx.Err() instead of a
// value.
func TestCtxCancelMidSampling(t *testing.T) {
	q := PathQuery("R", 3)
	d := smallPathDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var trials atomic.Int64
	tel := NewTelemetry()
	tel.OnTrial(func(TrialUpdate) {
		if trials.Add(1) == 1 {
			cancel()
		}
	})
	// Anytime mode (Delta > 0) with a hard certificate and a tall trial
	// cap: without cancellation this schedule runs many batches.
	opts := &Options{
		Epsilon:   0.2,
		Trials:    64,
		Delta:     1e-12,
		Seed:      7,
		Ctx:       ctx,
		Telemetry: tel,
	}
	if _, err := Estimate(q, d, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("Estimate: err = %v, want context.Canceled", err)
	}
	if n := trials.Load(); n == 0 || n >= 64 {
		t.Errorf("trials executed = %d, want in [1, 64): cancellation must stop within one batch", n)
	}
}

// TestCtxDeadlineUR: EstimateUR-side (UniformReliability) honours a
// cancelled context mid-sampling too, through both the tree and the
// string pipelines.
func TestCtxDeadlineUR(t *testing.T) {
	d := smallPathDB(t)
	for _, tc := range []struct {
		name string
		q    *Query
	}{
		{"path-string-pipeline", PathQuery("R", 3)},
		// A non-path shape routes through the tree pipeline (UREstimate).
		{"tree-pipeline", MustParseQuery("R1(x,y), R2(y,z), R3(w,z)")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var trials atomic.Int64
			tel := NewTelemetry()
			tel.OnTrial(func(TrialUpdate) {
				if trials.Add(1) == 1 {
					cancel()
				}
			})
			opts := &Options{
				Epsilon:   0.2,
				Trials:    64,
				Delta:     1e-12,
				Seed:      7,
				Ctx:       ctx,
				Telemetry: tel,
			}
			if _, err := UniformReliability(tc.q, d, opts); !errors.Is(err, context.Canceled) {
				t.Fatalf("UniformReliability: err = %v, want context.Canceled", err)
			}
			if n := trials.Load(); n == 0 || n >= 64 {
				t.Errorf("trials executed = %d, want in [1, 64)", n)
			}
		})
	}
}

// TestCtxNoPerturbation: attaching a live (never-cancelled) context
// must not change seeded results — bit-identical to a nil-Ctx run.
func TestCtxNoPerturbation(t *testing.T) {
	q := PathQuery("R", 3)
	d := smallPathDB(t)
	base := &Options{Epsilon: 0.2, Trials: 5, Seed: 11}
	want, err := Estimate(q, d, base)
	if err != nil {
		t.Fatal(err)
	}
	withCtx := *base
	withCtx.Ctx = context.Background()
	got, err := Estimate(q, d, &withCtx)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Estimate with Ctx = %v, without = %v; want bit-identical", got, want)
	}
}
