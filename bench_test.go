package pqe

// One benchmark per experiment in DESIGN.md's index (the paper's
// Table 1 plus the derived experiments E2–E12 and ablations A1–A2), so
// `go test -bench=.` regenerates every row's workload under the Go
// benchmark harness, plus component micro-benchmarks for the substrate
// layers. cmd/pqebench prints the corresponding human-readable tables.

import (
	"fmt"
	"math/big"
	"runtime"
	"testing"

	"pqe/internal/alphabet"
	"pqe/internal/core"
	"pqe/internal/count"
	"pqe/internal/cq"
	"pqe/internal/experiments"
	"pqe/internal/gen"
	"pqe/internal/hypertree"
	"pqe/internal/lineage"
	"pqe/internal/nfa"
	"pqe/internal/nfta"
	"pqe/internal/reduction"
	"pqe/internal/safeplan"
)

var benchSink any

// benchWorkers are the intra-trial worker counts the headline
// estimator benchmarks sweep: sequential plus all cores (skipped when
// they coincide). Results are identical at every setting; only the
// wall clock moves.
func benchWorkers() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// --- T1: Table 1 landscape ---

func BenchmarkTable1Landscape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.Table1(experiments.Opts{Quick: true, Seed: int64(i + 1)})
	}
}

// --- E2: Theorem 2, PathEstimate ---

func BenchmarkPathEstimate(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		q := cq.PathQuery("R", n)
		h := gen.SparsePathInstance(q, 3, 2, gen.ProbHalf, 1)
		d := h.DB()
		b.Run(fmt.Sprintf("len=%d_facts=%d", n, d.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := core.PathEstimate(q, d, core.Options{Epsilon: 0.1, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = v
			}
		})
	}
}

// --- E3: Theorem 3, UREstimate ---

func BenchmarkUREstimate(b *testing.B) {
	for _, tc := range []struct {
		name string
		q    *cq.Query
	}{
		{"path3", cq.PathQuery("R", 3)},
		{"star3", cq.StarQuery("S", 3)},
		{"triangle", cq.CycleQuery("C", 3)},
	} {
		h := gen.Instance(tc.q, gen.Config{FactsPerRelation: 3, DomainSize: 3, Seed: 2})
		d := h.DB()
		for _, w := range benchWorkers() {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					v, err := core.UREstimate(tc.q, d, core.Options{Epsilon: 0.1, Seed: int64(i + 1), Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					benchSink = v
				}
			})
		}
	}
}

// --- E4: Theorem 1, PQEEstimate ---

func BenchmarkPQEEstimate(b *testing.B) {
	for _, n := range []int{2, 3} {
		q := cq.PathQuery("R", n)
		h := gen.Instance(q, gen.Config{
			FactsPerRelation: 3, DomainSize: 3,
			Model: gen.ProbRandomRational, Seed: 3,
		})
		b.Run(fmt.Sprintf("len=%d_facts=%d", n, h.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := core.PQEEstimate(q, h, core.Options{Epsilon: 0.1, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = v
			}
		})
	}
}

// --- E5: lineage blow-up vs automaton size ---

func BenchmarkLineageVsAutomaton(b *testing.B) {
	for _, i := range []int{2, 3, 4, 5} {
		q := cq.PathQuery("R", i)
		h := gen.LayeredPathInstance(q, 3, gen.ProbHalf, 1)
		d := h.DB()
		b.Run(fmt.Sprintf("lineage/i=%d", i), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				f, err := lineage.Compute(q, d, 0)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = f
			}
		})
		b.Run(fmt.Sprintf("automaton/i=%d", i), func(b *testing.B) {
			dec, err := hypertree.Decompose(q)
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < b.N; k++ {
				red, err := reduction.BuildUR(q, d, dec)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = red
			}
		})
	}
}

// --- E6: runtime scaling in |D| ---

func BenchmarkScalingDatabase(b *testing.B) {
	q := cq.PathQuery("R", 3)
	for _, chains := range []int{2, 4, 8, 16} {
		h := gen.SparsePathInstance(q, chains, 2, gen.ProbHalf, 1)
		d := h.DB()
		b.Run(fmt.Sprintf("facts=%d", d.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := core.UREstimate(q, d, core.Options{Epsilon: 0.2, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = v
			}
		})
	}
}

// --- E7: runtime scaling in 1/ε ---

func BenchmarkScalingEpsilon(b *testing.B) {
	// Layered instance: overlapping unions make the ε-dependent sample
	// counts actually matter (see E7 in internal/experiments).
	q := cq.PathQuery("R", 3)
	h := gen.LayeredPathInstance(q, 2, gen.ProbRandomRational, 1)
	for _, eps := range []float64{0.4, 0.2, 0.1, 0.05} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := core.PQEEstimate(q, h, core.Options{Epsilon: eps, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = v
			}
		})
	}
}

// --- E8: Karp–Luby intensional baseline ---

func BenchmarkKarpLubyBaseline(b *testing.B) {
	for _, i := range []int{2, 3, 4} {
		q := cq.PathQuery("R", i)
		h := gen.LayeredPathInstance(q, 2, gen.ProbRandomRational, 1)
		d := h.DB()
		dnf, err := lineage.Compute(q, d, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("karpluby/i=%d_clauses=%d", i, dnf.NumClauses()), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				benchSink = dnf.KarpLuby(h, lineage.KarpLubyOptions{Samples: 2000, Seed: int64(k + 1)})
			}
		})
		b.Run(fmt.Sprintf("fpras/i=%d", i), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				v, err := core.PQEEstimate(q, h, core.Options{Epsilon: 0.2, Seed: int64(k + 1)})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = v
			}
		})
	}
}

// --- E9: safe plans ---

func BenchmarkSafePlan(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		q := cq.StarQuery("S", n)
		h := gen.Instance(q, gen.Config{
			FactsPerRelation: 4, DomainSize: 3,
			Model: gen.ProbRandomRational, Seed: 2,
		})
		b.Run(fmt.Sprintf("star%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := safeplan.Evaluate(q, h)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = v
			}
		})
	}
}

// --- A1: multiplier gadget ablation ---

func BenchmarkMultiplierGadget(b *testing.B) {
	for _, n := range []int64{10, 100, 1000} {
		b.Run(fmt.Sprintf("binary/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = buildMult(b, n, true)
			}
		})
		b.Run(fmt.Sprintf("unary/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = buildMult(b, n, false)
			}
		})
	}
}

func buildMult(b *testing.B, n int64, binary bool) *nfta.NFTA {
	b.Helper()
	in := alphabet.New()
	ma := nfta.NewMult(in)
	root := ma.AddState()
	ma.SetInitial(root)
	m := big.NewInt(n)
	if err := ma.AddTransition(root, in.Intern("x"), m, nfta.DigitsFor(m)); err != nil {
		b.Fatal(err)
	}
	var out *nfta.NFTA
	var err error
	if binary {
		out, err = ma.Translate()
	} else {
		out, err = ma.TranslateUnary()
	}
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// --- A2: augmented translation ablation ---

func BenchmarkAugmentedTranslation(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in := alphabet.New()
				aug := nfta.NewAugmented(in)
				root := aug.AddState()
				aug.SetInitial(root)
				label := make([]nfta.AugSymbol, n)
				for j := range label {
					label[j] = nfta.Opt(in.Intern(fmt.Sprintf("s%d", j)))
				}
				aug.AddTransition(root, label)
				out, err := aug.Translate()
				if err != nil {
					b.Fatal(err)
				}
				benchSink = out
			}
		})
	}
}

// --- component micro-benchmarks ---

func BenchmarkCountNFA(b *testing.B) {
	q := cq.PathQuery("R", 3)
	h := gen.SparsePathInstance(q, 4, 2, gen.ProbHalf, 1)
	d := h.DB()
	m, err := reduction.PathNFA(q, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = nfa.Count(m, d.Size(), nfa.CountOptions{Epsilon: 0.1, Seed: int64(i + 1)})
	}
}

func BenchmarkCountNFTA(b *testing.B) {
	q := cq.PathQuery("R", 3)
	h := gen.SparsePathInstance(q, 3, 2, gen.ProbHalf, 1)
	d := h.DB()
	dec, err := hypertree.Decompose(q)
	if err != nil {
		b.Fatal(err)
	}
	red, err := reduction.BuildUR(q, d, dec)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSink = count.Trees(red.Auto, red.TreeSize, count.Options{Epsilon: 0.1, Seed: int64(i + 1), Workers: w})
			}
		})
	}
}

func BenchmarkDecompose(b *testing.B) {
	queries := []*cq.Query{
		cq.PathQuery("R", 6),
		cq.CycleQuery("C", 6),
	}
	for _, q := range queries {
		b.Run(q.String()[:8], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := hypertree.Decompose(q)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = d
			}
		})
	}
}

func BenchmarkSafePlanVsBruteForce(b *testing.B) {
	q := cq.StarQuery("S", 3)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 4, DomainSize: 3, Model: gen.ProbRandomRational, Seed: 5})
	b.Run("safeplan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, err := safeplan.Evaluate(q, h)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = v
		}
	})
}

// --- E10: tree vs string pipeline on path queries ---

func BenchmarkPathPipeline(b *testing.B) {
	for _, n := range []int{2, 3} {
		q := cq.PathQuery("R", n)
		h := gen.SparsePathInstance(q, 2, 1, gen.ProbRandomRational, 1)
		b.Run(fmt.Sprintf("tree/len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := core.PQEEstimate(q, h, core.Options{Epsilon: 0.2, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = v
			}
		})
		b.Run(fmt.Sprintf("string/len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := core.PathPQEEstimate(q, h, core.Options{Epsilon: 0.2, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = v
			}
		})
	}
}
