// Package pqe approximates the probability of Boolean conjunctive
// queries over tuple-independent probabilistic databases — the
// probabilistic query evaluation (PQE) problem — with guarantees in
// combined complexity.
//
// It implements the FPRAS of van Bremen and Meel, "Probabilistic Query
// Evaluation: The Combined FPRAS Landscape" (PODS 2023): for any
// self-join-free conjunctive query of bounded hypertree width, Pr_H(Q)
// is approximated to a (1±ε) factor with high probability in time
// polynomial in the query length, the database size and 1/ε — even for
// queries that are #P-hard to evaluate exactly, such as path queries of
// length ≥ 3. Internally the query and database are compiled into a
// non-deterministic finite tree automaton whose trees of a fixed size
// encode the satisfying subinstances (weighted by probability
// multiplier gadgets), and the trees are counted with an
// Arenas–Croquevielle–Jayaram–Riveros-style approximate counter.
//
// Safe (hierarchical) queries are answered exactly with a Dalvi–Suciu
// safe plan unless the FPRAS is forced. Self-joins and unbounded-width
// classes are outside the supported landscape (the open cells of the
// paper's Table 1) and are reported as ErrUnsupported.
//
// # Quick start
//
//	q, _ := pqe.ParseQuery("Causes(x,y), Treats(z,y)")
//	db := pqe.NewDatabase()
//	db.AddFact("Causes", big.NewRat(9, 10), "smoking", "cancer")
//	db.AddFact("Treats", big.NewRat(3, 4), "drugX", "cancer")
//	res, _ := pqe.Probability(q, db, nil)
//	fmt.Println(res.Probability, res.Method)
package pqe

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"os"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/hypertree"
	"pqe/internal/lineage"
	"pqe/internal/pdb"
	"pqe/internal/safeplan"
)

// ErrUnsupported is returned for queries outside the paper's landscape:
// self-joins, or no hypertree decomposition within the width cap.
var ErrUnsupported = core.ErrUnsupported

// ErrUnsafe is returned by ExactProbability for queries with no safe
// plan.
var ErrUnsafe = safeplan.ErrUnsafe

// Query is a Boolean conjunctive query.
type Query struct {
	q *cq.Query
}

// ParseQuery parses a conjunctive query written as a comma-separated
// atom list over variables, e.g. "R(x,y), S(y,z)".
func ParseQuery(s string) (*Query, error) {
	q, err := cq.Parse(s)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(s string) *Query {
	q, err := ParseQuery(s)
	if err != nil {
		panic(err)
	}
	return q
}

// PathQuery returns the self-join-free path query
// R1(x1,x2), …, Rn(xn,xn+1) of the paper's 3Path family.
func PathQuery(relPrefix string, n int) *Query {
	return &Query{q: cq.PathQuery(relPrefix, n)}
}

// StarQuery returns the hierarchical (safe) star query
// R1(x,y1), …, Rn(x,yn).
func StarQuery(relPrefix string, n int) *Query {
	return &Query{q: cq.StarQuery(relPrefix, n)}
}

// String renders the query.
func (q *Query) String() string { return q.q.String() }

// Len returns |Q|, the number of atoms.
func (q *Query) Len() int { return q.q.Len() }

// SelfJoinFree reports whether no relation name repeats.
func (q *Query) SelfJoinFree() bool { return q.q.SelfJoinFree() }

// IsPath reports whether the query is a path query.
func (q *Query) IsPath() bool { return q.q.IsPath() }

// Safe reports whether the query admits an exact polynomial-time safe
// plan (for self-join-free queries: the hierarchical property).
func (q *Query) Safe() bool { return safeplan.IsSafe(q.q) }

// HypertreeWidth returns the minimal (generalized) hypertree width
// found for the query, or an error if no decomposition exists.
func (q *Query) HypertreeWidth() (int, error) {
	dec, err := hypertree.Decompose(q.q)
	if err != nil {
		return 0, err
	}
	return dec.Width(), nil
}

// Database is a tuple-independent probabilistic database: a set of
// facts, each with an independent rational probability.
type Database struct {
	h *pdb.Probabilistic
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{h: pdb.Empty()}
}

// AddFact adds a fact with the given probability (nil means 1). Adding
// an existing fact overwrites its probability. The probability must lie
// in [0, 1].
func (d *Database) AddFact(relation string, prob *big.Rat, args ...string) error {
	p := pdb.ProbOne
	if prob != nil {
		if prob.Sign() < 0 || prob.Cmp(big.NewRat(1, 1)) > 0 {
			return fmt.Errorf("pqe: probability %v outside [0,1]", prob)
		}
		p = pdb.ProbFromRat(prob)
	}
	d.h.Add(pdb.NewFact(relation, args...), p)
	return nil
}

// Size returns the number of facts.
func (d *Database) Size() int { return d.h.Size() }

// String renders the database in the textual format of ParseDatabase.
func (d *Database) String() string { return pdb.FormatString(d.h) }

// ParseDatabase reads a database in the textual format
//
//	R(a, b) : 3/4
//	S(b)    : 0.25
//	T(a, c)            # probability 1
//
// Blank lines and '#' comments are ignored.
func ParseDatabase(r io.Reader) (*Database, error) {
	h, err := pdb.Parse(r)
	if err != nil {
		return nil, err
	}
	return &Database{h: h}, nil
}

// LoadDatabase reads a database file in the ParseDatabase format.
func LoadDatabase(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseDatabase(f)
}

// Options tunes the estimators. The zero value (or nil) uses defaults:
// ε = 0.1, 5 trials, derived sample counts, seed 1.
type Options struct {
	// Epsilon is the target relative error in (0, 1).
	Epsilon float64
	// Trials is the number of independent estimates whose median is
	// returned (confidence boosting).
	Trials int
	// Samples overrides the per-overlap sample count (0 = derive from
	// Epsilon).
	Samples int
	// Seed makes runs deterministic; 0 means seed 1.
	Seed int64
	// MaxWidth caps the hypertree width searched (0 = |Q|).
	MaxWidth int
	// ForceFPRAS routes even safe queries through the FPRAS.
	ForceFPRAS bool
	// Strategy selects how Probability routes. "" keeps the legacy
	// two-way routing (safe → exact plan, else tree FPRAS). "auto"
	// enables the full cost-based router: hierarchical queries go to the
	// exact safe plan, provably small lineages to exact weighted model
	// counting (OBDD with Shannon-expansion fallback), path queries over
	// binary facts to the string-automaton FPRAS, and the rest of the
	// tractable landscape to the tree-automaton FPRAS — plus anytime
	// sequential stopping in the FPRAS engines (see Delta).
	// "force-<engine>" (safeplan, obdd, lineage, nfta, nfa, montecarlo)
	// pins one strategy unconditionally.
	Strategy string
	// Delta is the failure-probability target of the anytime stopping
	// certificate in (0,1); ≤ 0 uses a default matching the fixed
	// 5-trial schedule (δ ≈ 0.1). Under Strategy "" (legacy routing),
	// setting Delta > 0 opts the FPRAS engines into sequential stopping:
	// trials run in deterministic batches and the call stops as soon as
	// the executed trials certify the (ε, δ) target, with the fixed
	// Trials count as a hard cap. Results stay bit-identical for a fixed
	// Seed at every MaxProcs setting.
	Delta float64
	// MaxProcs bounds the workers of the counting engines' unified
	// work-stealing scheduler, which dispatches whole trials and chunks
	// of their overlap-sampling loops onto one pool
	// (runtime.NumCPU() is a good setting for large instances). For a
	// fixed Seed the result is bit-identical at every MaxProcs value.
	// 0 derives the worker count from the deprecated Parallel/Workers
	// pair (1 when both are unset).
	MaxProcs int
	// Parallel runs the estimator's independent trials on separate
	// goroutines; results are identical to sequential runs with the
	// same Seed.
	//
	// Deprecated: set MaxProcs. Parallel maps to MaxProcs = Trials.
	Parallel bool
	// Workers bounds the goroutines the counting engine uses inside
	// each trial's overlap-sampling loops (0 or 1 = sequential).
	//
	// Deprecated: set MaxProcs. Workers > 1 maps to MaxProcs = Workers.
	Workers int
	// Ctx, when non-nil, bounds the evaluation: the FPRAS sampling
	// loops observe cancellation at every trial-batch boundary and the
	// call returns Ctx.Err() instead of an estimate. Automaton
	// construction stages are not interruptible; a deadline expiring
	// mid-build is reported at the next boundary. A nil Ctx (the
	// default) never cancels. Cancellation does not perturb seeded
	// results: a call that runs to completion is bit-identical with or
	// without a Ctx attached.
	Ctx context.Context
	// Telemetry, when non-nil, collects stage traces, pipeline metrics
	// and per-trial convergence records for every evaluation using these
	// options (see NewTelemetry). Collection does not change results:
	// seeded runs stay bit-identical with or without it.
	Telemetry *Telemetry
	// RequestID is an optional correlation ID stamped on the root spans
	// of this evaluation's trace (service callers thread their
	// X-Request-Id here). Purely observational: it never influences
	// results. Ignored when Telemetry is nil.
	RequestID string
	// Shards, when non-nil, distributes the FPRAS counting phases
	// across the pool's worker processes (see NewShardPool). Routing,
	// automaton construction and post-counting scaling stay local; only
	// the embarrassingly parallel trial schedule is farmed out. Results
	// are bit-identical to the in-process run for a fixed Seed.
	Shards *ShardPool
}

func (o *Options) core() core.Options {
	if o == nil {
		return core.Options{}
	}
	c := core.Options{
		Epsilon:    o.Epsilon,
		Trials:     o.Trials,
		Samples:    o.Samples,
		Seed:       o.Seed,
		MaxWidth:   o.MaxWidth,
		ForceFPRAS: o.ForceFPRAS,
		Strategy:   o.Strategy,
		Delta:      o.Delta,
		MaxProcs:   o.MaxProcs,
		Parallel:   o.Parallel,
		Workers:    o.Workers,
		Obs:        o.Telemetry.scope().WithRequestID(o.RequestID),
		Ctx:        o.Ctx,
	}
	if o.Shards != nil {
		c.Shard = o.Shards.p
	}
	return c
}

// Result reports a probability and how it was computed.
type Result struct {
	// Probability is Pr_H(Q) (exact or a (1±ε)-approximation).
	Probability float64
	// Exact is true when a safe plan produced the value.
	Exact bool
	// Method names the algorithm used.
	Method string
	// Reason explains the routing decision (Strategy routing only).
	Reason string
	// Width is the (generalized) hypertree width of the query.
	Width int
	// Safe and SelfJoinFree are the query's Table 1 coordinates.
	Safe         bool
	SelfJoinFree bool
}

// Probability computes Pr_H(Q), routing to the best algorithm: an exact
// safe plan for safe queries, the combined-complexity FPRAS for unsafe
// self-join-free queries of bounded hypertree width. opts may be nil.
func Probability(q *Query, d *Database, opts *Options) (Result, error) {
	res, err := core.Evaluate(q.q, d.h, opts.core())
	if err != nil {
		return Result{}, err
	}
	return Result{
		Probability:  res.Probability,
		Exact:        res.Exact,
		Method:       string(res.Method),
		Reason:       res.Reason,
		Width:        res.Class.Width,
		Safe:         res.Class.Safe,
		SelfJoinFree: res.Class.SelfJoinFree,
	}, nil
}

// Estimate always runs the Theorem 1 FPRAS (no safe-plan routing):
// a (1±ε)-approximation of Pr_H(Q) with high probability, in time
// polynomial in |Q|, |H| and 1/ε. opts may be nil.
func Estimate(q *Query, d *Database, opts *Options) (float64, error) {
	return core.PQEEstimate(q.q, d.h, opts.core())
}

// UniformReliability approximates UR(Q, D): the number of subinstances
// of D (ignoring probabilities) that satisfy Q, per Theorem 3 (or the
// Theorem 2 string-automaton pipeline for path queries). The count is
// returned as a big.Float since it can reach 2^|D|. opts may be nil.
func UniformReliability(q *Query, d *Database, opts *Options) (*big.Float, error) {
	copts := opts.core()
	db := d.h.DB()
	if q.q.IsPath() && q.q.SelfJoinFree() && binaryOnly(db, q.q) {
		c, err := core.PathEstimate(q.q, db, copts)
		if err != nil {
			return nil, err
		}
		return c.BigFloat(), nil
	}
	c, err := core.UREstimate(q.q, db, copts)
	if err != nil {
		return nil, err
	}
	return c.BigFloat(), nil
}

func binaryOnly(db *pdb.Database, q *cq.Query) bool {
	rels := q.RelationSet()
	for _, f := range db.Facts() {
		if rels[f.Relation] && f.Arity() != 2 {
			return false
		}
	}
	return true
}

// ExactProbability computes Pr_H(Q) exactly with a Dalvi–Suciu safe
// plan. It returns ErrUnsafe when the query has no safe plan (use
// Estimate or Probability instead).
func ExactProbability(q *Query, d *Database) (*big.Rat, error) {
	return safeplan.Evaluate(q.q, d.h)
}

// BruteForceProbability computes Pr_H(Q) exactly by enumerating all
// 2^|D| subinstances. Only for tiny databases (|D| ≤ 30); intended for
// testing and calibration.
func BruteForceProbability(q *Query, d *Database) (*big.Rat, error) {
	p, err := exact.PQE(q.q, d.h)
	if err != nil {
		return nil, fmt.Errorf("pqe: %w", err)
	}
	return p, nil
}

// LineageInfo describes the DNF lineage of a query over a database —
// the object whose Θ(|D|^|Q|) growth the intensional approach suffers
// from and this library's FPRAS avoids.
type LineageInfo struct {
	Clauses  int
	Literals int
}

// Lineage computes the query's lineage size over the database,
// aborting with an error after limit clauses (0 = no limit). Useful to
// see when the intensional approach stops being feasible.
func Lineage(q *Query, d *Database, limit int) (LineageInfo, error) {
	f, err := lineage.Compute(q.q, d.h.DB(), limit)
	if err != nil {
		return LineageInfo{}, err
	}
	return LineageInfo{Clauses: f.NumClauses(), Literals: f.Size()}, nil
}

// Explain returns a human-readable evaluation plan for the query over
// the database — the Table 1 classification, the chosen algorithm, and
// (for the FPRAS route) the hypertree decomposition and the sizes of
// every automaton the reduction builds — without running the counting
// stage.
func Explain(q *Query, d *Database, opts *Options) (string, error) {
	r, err := core.Explain(q.q, d.h, opts.core())
	if err != nil {
		return "", err
	}
	return r.String(), nil
}

// PosteriorInclusion approximates Pr(f present | Q holds): the
// probability that a specific fact participates in a world where the
// query is true. The fact is given as a relation and arguments, and
// must be in the database. Two FPRAS invocations are used, so a single
// call carries roughly a (1±2ε) guarantee.
func PosteriorInclusion(q *Query, d *Database, opts *Options, relation string, args ...string) (float64, error) {
	return core.PosteriorInclusion(q.q, d.h, pdb.NewFact(relation, args...), opts.core())
}

// World is a sampled possible world: the set of facts present.
type World struct {
	// Present[i] reports whether the i-th fact (in insertion order) is
	// in the world.
	Present []bool
	facts   []pdb.Fact
}

// Facts returns the facts present in the world, rendered as "R(a,b)"
// strings in insertion order.
func (w *World) Facts() []string {
	var out []string
	for i, p := range w.Present {
		if p {
			out = append(out, w.facts[i].Key())
		}
	}
	return out
}

// SampleWorld draws a possible world conditioned on the query being
// satisfied, approximately according to Pr_H(· | Q) — the uniform-
// generation facet of the underlying counting machinery. It returns
// nil with no error when Pr_H(Q) = 0. Use distinct Seeds in opts for
// independent draws.
func SampleWorld(q *Query, d *Database, opts *Options) (*World, error) {
	mask, err := core.SampleWorld(q.q, d.h, opts.core())
	if err != nil {
		return nil, err
	}
	if mask == nil {
		return nil, nil
	}
	return &World{Present: mask, facts: d.h.DB().Facts()}, nil
}

// SampleSatisfyingSubinstance draws a near-uniform satisfying
// subinstance of the database (probabilities ignored; the uniform-
// reliability distribution). It returns nil with no error when the
// query is unsatisfiable over the database.
func SampleSatisfyingSubinstance(q *Query, d *Database, opts *Options) (*World, error) {
	mask, err := core.SampleSatisfying(q.q, d.h.DB(), opts.core())
	if err != nil {
		return nil, err
	}
	if mask == nil {
		return nil, nil
	}
	return &World{Present: mask, facts: d.h.DB().Facts()}, nil
}

// Classify reports the query's coordinates in the paper's Table 1
// landscape.
func Classify(q *Query) (selfJoinFree, boundedWidth, safe bool, width int) {
	c := core.Classify(q.q, 0)
	return c.SelfJoinFree, c.BoundedHW, c.Safe, c.Width
}

// ProbabilityUnion computes Pr(Q₁ ∨ … ∨ Q_k) for a union of
// conjunctive queries whose disjuncts use pairwise-disjoint relation
// sets (which makes them independent under tuple independence):
// Pr = 1 − ∏ᵢ(1 − Pr(Qᵢ)), with each disjunct routed like Probability.
// Unions with shared relations correlate through shared facts — the
// self-join problem, an open cell of the paper's Table 1 — and are
// rejected with ErrUnsupported.
func ProbabilityUnion(queries []*Query, d *Database, opts *Options) (float64, error) {
	qs := make([]*cq.Query, len(queries))
	for i, q := range queries {
		qs[i] = q.q
	}
	return core.EvaluateUnion(qs, d.h, opts.core())
}
