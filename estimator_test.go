package pqe

import (
	"math/big"
	"testing"
)

func TestEstimatorPublicAPI(t *testing.T) {
	q := PathQuery("R", 3)
	d := smallPathDB(t)
	opts := &Options{Epsilon: 0.2, Trials: 3, Seed: 7}
	est := NewEstimator(q, d, opts)

	res, err := est.Probability(nil)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := Probability(q, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability != oneShot.Probability {
		t.Errorf("session %v != one-shot %v", res.Probability, oneShot.Probability)
	}
	if _, err := est.Estimate(nil); err != nil {
		t.Fatal(err)
	}
	ur, err := est.UniformReliability(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ur.Sign() <= 0 {
		t.Errorf("UR = %v, want > 0", ur)
	}
	if _, err := est.Explain(nil); err != nil {
		t.Fatal(err)
	}
	w, err := est.SampleWorld(&Options{Epsilon: 0.2, Trials: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || len(w.Present) != d.Size() {
		t.Fatalf("SampleWorld mask: %+v", w)
	}
	if _, err := est.SampleSatisfyingSubinstance(nil); err != nil {
		t.Fatal(err)
	}

	st := est.BuildStats()
	if st.Decompositions != 1 || st.URReductions != 1 || st.PathAutomata != 1 {
		t.Errorf("construction stages reran: %+v", st)
	}

	// Re-weight: same facts, new probability.
	d2 := smallPathDB(t)
	if err := d2.AddFact("R1", big.NewRat(9, 10), "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := est.SetProbabilities(d2); err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Estimate(q, d2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Errorf("re-weighted %v != fresh %v", got, fresh)
	}
	st = est.BuildStats()
	if st.Decompositions != 1 || st.URReductions != 1 || st.PathAutomata != 1 {
		t.Errorf("SetProbabilities invalidated construction stages: %+v", st)
	}

	// A different fact set rebuilds the database-keyed stages and still
	// matches a fresh estimator.
	d3 := smallPathDB(t)
	if err := d3.AddFact("R3", big.NewRat(1, 4), "d", "g"); err != nil {
		t.Fatal(err)
	}
	if err := est.SetProbabilities(d3); err != nil {
		t.Fatal(err)
	}
	got, err = est.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err = Estimate(q, d3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Errorf("rebuilt session %v != fresh %v", got, fresh)
	}
	st = est.BuildStats()
	if st.URReductions != 2 {
		t.Errorf("URReductions = %d after changed facts, want 2 (rebuild)", st.URReductions)
	}
	if st.Decompositions != 1 {
		t.Errorf("Decompositions = %d, want 1 (query-keyed cache survives)", st.Decompositions)
	}
}
