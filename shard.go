package pqe

import (
	"net"

	"pqe/internal/shard"
)

// ShardPool is a coordinator-side connection pool over shard worker
// processes (see cmd/pqe -shard-listen). Attach one to Options.Shards
// and every FPRAS counting phase of that call is partitioned into
// contiguous trial ranges, executed on the workers, and merged through
// the same upper-median path the in-process engines use — the result
// is bit-identical to the local run at any worker count, including
// after a mid-call worker failure (ranges are reassigned; trial seeds
// derive from (seed, index), never from placement).
//
// A ShardPool is safe for concurrent use by independent evaluations
// and is reusable across queries and databases: workers cache an
// estimator session per instance, keyed by content.
type ShardPool struct {
	p *shard.Pool
}

// NewShardPool connects to the given worker addresses ("host:port").
// Every worker must answer the protocol handshake; a failure closes
// the pool and reports which worker was unreachable.
func NewShardPool(addrs ...string) (*ShardPool, error) {
	p, err := shard.Dial(addrs, shard.PoolConfig{})
	if err != nil {
		return nil, err
	}
	return &ShardPool{p: p}, nil
}

// Workers returns the number of configured workers.
func (s *ShardPool) Workers() int { return s.p.Workers() }

// Close drops the worker connections. Evaluations in flight fail over
// as if the workers died.
func (s *ShardPool) Close() { s.p.Close() }

// ShardStats is a snapshot of a pool's lifetime dispatch counters.
type ShardStats struct {
	// RangesDispatched counts contiguous trial ranges sent to workers;
	// TrialsDispatched the trials those ranges covered.
	RangesDispatched int64
	TrialsDispatched int64
	// Reassigned counts ranges re-run on another worker after a
	// failure; WorkerFailures the failed attempts that caused them.
	Reassigned     int64
	WorkerFailures int64
}

// ServeShardWorker runs a shard worker process on the listener until
// it is closed: it accepts coordinator connections, caches an
// estimator session per (query, database, max width) instance, and
// executes the trial ranges it is assigned. maxProcs bounds the
// engines' scheduler width per request (0 means all CPUs). If tel is
// non-nil it receives the worker-local engine telemetry.
func ServeShardWorker(l net.Listener, maxProcs int, tel *Telemetry) error {
	cfg := shard.ServerConfig{MaxProcs: maxProcs}
	if tel != nil {
		cfg.Obs = tel.scope()
	}
	return shard.NewServer(cfg).Serve(l)
}

// Stats returns the pool's dispatch counters.
func (s *ShardPool) Stats() ShardStats {
	st := s.p.Stats()
	return ShardStats{
		RangesDispatched: st.RangesDispatched,
		TrialsDispatched: st.TrialsDispatched,
		Reassigned:       st.Reassigned,
		WorkerFailures:   st.WorkerFailures,
	}
}
