# Development targets for the pqe reproduction.

GO ?= go

.PHONY: all build vet test test-short race bench experiments experiments-md fuzz loc clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the sampling-heavy property tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

# One benchmark per experiment table/figure plus component micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the experiment tables (text).
experiments:
	$(GO) run ./cmd/pqebench

# Regenerate the tables in the EXPERIMENTS.md format.
experiments-md:
	$(GO) run ./cmd/pqebench -markdown

fuzz:
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/cq/
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/pdb/
	$(GO) test -fuzz='^FuzzParseFact$$' -fuzztime=30s ./internal/pdb/

loc:
	find . -name '*.go' | xargs wc -l | tail -1

clean:
	$(GO) clean ./...
	rm -rf internal/*/testdata/fuzz
