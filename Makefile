# Development targets for the pqe reproduction.

GO ?= go

.PHONY: all build vet lint test test-short race bench bench-json bench-compare delta-soak experiments experiments-md fuzz testkit soak serve-smoke shard-smoke bench-shard loc clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Source hygiene: go vet plus the forbidden-pattern checks (no
# fmt.Print*/log.Print* outside cmd/ and examples/ — library code logs
# through the configured slog logger).
lint: vet
	$(GO) test ./internal/lint/

test:
	$(GO) test ./...

# Skips the sampling-heavy property tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# One benchmark per experiment table/figure plus component micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed engine micro-benchmark JSON baselines.
bench-json:
	$(GO) run ./cmd/pqebench -json -maxprocs 4

# Re-run the micro-benchmarks into /tmp and diff against the committed
# baselines: per-row ns_per_op / allocs_per_op deltas, a geomean
# summary, and a non-zero exit on any >$(BENCH_MAX_REGRESS) ns_per_op
# regression. The nightly soak workflow runs this and uploads the
# reports.
BENCH_MAX_REGRESS ?= 0.25
bench-compare:
	$(GO) run ./cmd/pqebench -json -maxprocs 4 \
		-json-out /tmp/BENCH_countnfta.json -json-nfa-out /tmp/BENCH_countnfa.json \
		-json-churn-out /tmp/BENCH_churn.json -json-router-out /tmp/BENCH_router.json
	$(GO) run ./cmd/pqebench -compare -max-regress $(BENCH_MAX_REGRESS) \
		BENCH_countnfta.json /tmp/BENCH_countnfta.json
	$(GO) run ./cmd/pqebench -compare -max-regress $(BENCH_MAX_REGRESS) \
		BENCH_countnfa.json /tmp/BENCH_countnfa.json
	$(GO) run ./cmd/pqebench -compare -max-regress $(BENCH_MAX_REGRESS) \
		BENCH_churn.json /tmp/BENCH_churn.json
	$(GO) run ./cmd/pqebench -compare -max-regress $(BENCH_MAX_REGRESS) \
		BENCH_router.json /tmp/BENCH_router.json

# Long randomized delta soak: interleave random fact-level deltas with
# estimates and check every estimate is bit-identical to a from-scratch
# session at the same database version. DELTA_STEPS deltas per case.
DELTA_STEPS ?= 200
delta-soak:
	PQE_TESTKIT_DELTA_STEPS=$(DELTA_STEPS) $(GO) test ./internal/testkit \
		-run TestDeltaSoak -timeout 60m -v

# Regenerate the experiment tables (text).
experiments:
	$(GO) run ./cmd/pqebench

# Regenerate the tables in the EXPERIMENTS.md format.
experiments-md:
	$(GO) run ./cmd/pqebench -markdown

fuzz:
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/cq/
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/pdb/
	$(GO) test -fuzz='^FuzzParseFact$$' -fuzztime=30s ./internal/pdb/
	$(GO) test -run=NONE -fuzz='^FuzzQueryToPipeline$$' -fuzztime=30s ./internal/testkit/
	$(GO) test -run=NONE -fuzz='^FuzzPathNFAConstruction$$' -fuzztime=30s ./internal/testkit/
	$(GO) test -run=NONE -fuzz='^FuzzNFTAConstruction$$' -fuzztime=30s ./internal/testkit/

# Long-mode differential + metamorphic suites (96 cases each).
testkit:
	$(GO) test -v -run 'TestDifferential|TestMetamorphic' ./internal/testkit/

# Scripted workload against a real pqed listener: one-shot vs streamed
# bit-identity, a same-seed burst, a delta round-trip with a 409 replay,
# and a /metrics scrape asserting zero shed at this low load. The
# scrape lands in SERVE_SMOKE_OUT (CI uploads it as an artifact).
SERVE_SMOKE_OUT ?= /tmp/pqed-metrics.prom
serve-smoke:
	$(GO) run ./cmd/pqed -smoke -smoke-out $(SERVE_SMOKE_OUT)

# Coordinator/worker sharding smoke: the shard protocol package plus
# the distributed-vs-local differential lane (bit-identity at worker
# counts 1/2/4 including a mid-suite worker kill), under -race.
shard-smoke:
	$(GO) test -race -run 'TestDifferentialShard' -short ./internal/testkit/
	$(GO) test -race ./internal/shard/

# Regenerate the committed multi-process sharding benchmark: real
# worker subprocesses at 2 and 4 workers, sharded rows gated
# bit-identical to the in-process baseline.
bench-shard:
	$(GO) run ./cmd/pqebench -json -maxprocs 4 \
		-json-out /tmp/BENCH_countnfta.json -json-nfa-out /tmp/BENCH_countnfa.json \
		-json-churn-out /tmp/BENCH_churn.json -json-router-out /tmp/BENCH_router.json \
		-json-shard-out BENCH_shard.json

# The nightly-CI workload, locally: 10x case budget on a chosen seed.
soak:
	PQE_TESTKIT_CASES=960 $(GO) test -timeout 60m \
		-run 'TestDifferential|TestMetamorphic' \
		-testkit.seed=$${SEED:-1} ./internal/testkit/

loc:
	find . -name '*.go' | xargs wc -l | tail -1

clean:
	$(GO) clean ./...
	rm -rf internal/*/testdata/fuzz
