package pqe

import (
	"fmt"
	"math/big"
	"testing"
)

func TestDeltaBuilderAndString(t *testing.T) {
	delta := NewDelta().
		Insert("R", big.NewRat(1, 2), "a", "b").
		Delete("S", "x", "y").
		Reweight("T", big.NewRat(2, 3), "c")
	if delta.Len() != 3 {
		t.Fatalf("Len = %d, want 3", delta.Len())
	}
	if got, want := delta.String(), "+R(a,b):1/2 -S(x,y) ~T(c):2/3"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	// nil probability means 1.
	if got, want := NewDelta().Insert("R", nil, "a").String(), "+R(a):1"; got != want {
		t.Errorf("nil-prob insert = %q, want %q", got, want)
	}
}

func TestDatabaseApplyDelta(t *testing.T) {
	d := smallPathDB(t)
	v0 := d.Version()
	sum, err := d.ApplyDelta(NewDelta().
		Insert("R3", big.NewRat(1, 3), "d", "f").
		Delete("R1", "a", "c").
		Reweight("R2", big.NewRat(1, 5), "b", "d"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Inserts != 1 || sum.Deletes != 1 || sum.Reweights != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Version <= v0 || d.Version() != sum.Version {
		t.Errorf("version did not advance: %d -> %d (summary %d)", v0, d.Version(), sum.Version)
	}
	if d.Size() != 5 {
		t.Errorf("size = %d, want 5", d.Size())
	}

	// Atomicity: a batch with one bad op applies nothing.
	v1 := d.Version()
	if _, err := d.ApplyDelta(NewDelta().
		Insert("R3", nil, "d", "g").
		Delete("R1", "no", "such")); err == nil {
		t.Fatal("invalid delta was accepted")
	}
	if d.Version() != v1 || d.Size() != 5 {
		t.Errorf("rejected delta mutated the database (version %d -> %d)", v1, d.Version())
	}

	// Probability range validation happens before any mutation.
	if _, err := d.ApplyDelta(NewDelta().Insert("R3", big.NewRat(3, 2), "d", "g")); err == nil {
		t.Fatal("out-of-range probability was accepted")
	}
	if d.Version() != v1 {
		t.Error("rejected probability mutated the database")
	}
}

// The public session contract: estimates across ApplyDelta match a
// fresh estimator at the same database state, reweights stay on the
// rebind path, and structural deltas stay on the incremental path.
func TestEstimatorApplyDelta(t *testing.T) {
	q := PathQuery("R", 3)
	d := smallPathDB(t)
	opts := &Options{Epsilon: 0.2, Trials: 3, Seed: 7}
	est := NewEstimator(q, d, opts)
	if _, err := est.Estimate(nil); err != nil {
		t.Fatal(err)
	}

	if _, err := est.ApplyDelta(NewDelta().Reweight("R1", big.NewRat(9, 10), "a", "b")); err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Estimate(q, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Errorf("after reweight delta: session %v != fresh %v", got, fresh)
	}
	st := est.BuildStats()
	if st.URReductions != 1 || st.IncrementalUR != 0 {
		t.Errorf("reweight delta rebuilt the automaton: %+v", st)
	}

	if _, err := est.ApplyDelta(NewDelta().
		Insert("R2", big.NewRat(1, 4), "c", "e").
		Delete("R1", "a", "c")); err != nil {
		t.Fatal(err)
	}
	got, err = est.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if fresh, err = Estimate(q, d, opts); err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Errorf("after structural delta: session %v != fresh %v", got, fresh)
	}
	st = est.BuildStats()
	if st.URReductions != 2 || st.IncrementalUR != 1 {
		t.Errorf("structural delta did not take the incremental path: %+v", st)
	}
}

// ExampleEstimator_ApplyDelta shows a session absorbing fact-level
// updates without rebuilding the automata from scratch.
func ExampleEstimator_ApplyDelta() {
	q := PathQuery("R", 3)
	d := NewDatabase()
	d.AddFact("R1", big.NewRat(1, 2), "a", "b")
	d.AddFact("R2", big.NewRat(1, 2), "b", "c")
	d.AddFact("R3", big.NewRat(1, 2), "c", "d")

	opts := &Options{Epsilon: 0.1, Trials: 3, Seed: 1}
	est := NewEstimator(q, d, opts)
	before, _ := est.Estimate(nil)

	// One update batch: a new edge appears, an old one gets likelier.
	est.ApplyDelta(NewDelta().
		Insert("R3", big.NewRat(1, 2), "c", "e").
		Reweight("R1", big.NewRat(3, 4), "a", "b"))
	after, _ := est.Estimate(nil)

	fmt.Printf("before: %.4f\n", before)
	fmt.Printf("after:  %.4f\n", after)
	// Output:
	// before: 0.1250
	// after:  0.2812
}
