package pqe

import (
	"io"
	"net/http"
	"time"

	"pqe/internal/obs"
)

// Telemetry collects the pipeline's observability signals for one or
// more evaluations: a hierarchical stage trace (decomposition, automaton
// construction, weighting, trim, every sampling trial), a metrics
// registry (construction counters plus the counting engines' effort
// counters — memo hits and misses, interner sizes, acceptance checks,
// worker utilization), and per-trial convergence records showing the
// median-of-trials estimate stabilize.
//
// Attach one via Options.Telemetry and read it back with the Write*
// methods, or serve it live with ServeDebug. A nil *Telemetry is valid
// everywhere and disables collection. Collection never perturbs the
// estimators' PRNG streams: seeded runs return bit-identical results
// with telemetry attached or not.
//
// A Telemetry may be shared across estimators and across goroutines;
// the sinks are concurrency-safe.
type Telemetry struct {
	tracer *obs.Tracer
	reg    *obs.Registry
	conv   *obs.Convergence
	phases *obs.Phases
}

// NewTelemetry returns an empty telemetry collector with all three
// sinks (trace, metrics, convergence) enabled.
func NewTelemetry() *Telemetry {
	return &Telemetry{
		tracer: obs.NewTracer(),
		reg:    obs.NewRegistry(),
		conv:   obs.NewConvergence(),
		phases: obs.NewPhases(),
	}
}

// scope adapts the collector for the internal pipeline (nil-safe).
func (t *Telemetry) scope() *obs.Scope {
	if t == nil {
		return nil
	}
	return obs.NewScope(t.tracer, t.reg, t.conv).WithPhases(t.phases)
}

// PhaseSeconds returns the per-phase time the pipeline accrued into
// this collector (currently the "build" phase: automaton construction
// triggered by evaluations carrying this Telemetry). Service callers
// attach one collector per request and read the build share of the
// call back out of it. Nil map on a nil collector.
func (t *Telemetry) PhaseSeconds() map[string]float64 {
	if t == nil {
		return nil
	}
	return t.phases.Seconds()
}

// CounterValue returns the current value of a registry counter (e.g.
// "router_trials_saved_total"), 0 when absent or on a nil collector.
func (t *Telemetry) CounterValue(name string) int64 {
	if t == nil {
		return 0
	}
	return t.reg.Counter(name).Value()
}

// CaptureAllocs enables heap-allocation deltas on every span. Off by
// default: each capture costs two runtime.ReadMemStats, which is far
// from free on span-dense traces.
func (t *Telemetry) CaptureAllocs(on bool) {
	if t != nil {
		t.tracer.CaptureAllocs(on)
	}
}

// TrialUpdate reports one completed sampling trial of a counting call.
type TrialUpdate struct {
	// Engine is "countnfta" (tree pipeline) or "countnfa" (string
	// pipeline).
	Engine string
	// Call numbers the counting call within this collector; Trial and
	// Trials locate the trial in the call's median-of-trials schedule.
	Call   int64
	Trial  int
	Trials int
	// Epsilon is the call's per-trial target relative error.
	Epsilon float64
	// Log2Estimate is log₂ of the trial's estimate (−Inf when zero) —
	// counts overflow float64, their logarithms don't.
	Log2Estimate float64
	// UnionSamples is the number of overlap samples the trial drew.
	UnionSamples int
	// Elapsed is the trial's wall time.
	Elapsed time.Duration
}

// OnTrial registers a callback fired after every completed sampling
// trial — a live convergence feed. The callback may run on estimator
// worker goroutines (with Options.Parallel) and must be fast and
// concurrency-safe. Only one callback is kept; nil unregisters.
func (t *Telemetry) OnTrial(fn func(TrialUpdate)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.conv.OnTrial(nil)
		return
	}
	t.conv.OnTrial(func(r obs.TrialRecord) {
		fn(TrialUpdate{
			Engine:       r.Engine,
			Call:         r.Call,
			Trial:        r.Trial,
			Trials:       r.Trials,
			Epsilon:      r.Epsilon,
			Log2Estimate: r.Log2Estimate,
			UnionSamples: r.UnionSamples,
			Elapsed:      r.Elapsed,
		})
	})
}

// WriteMetricsJSON renders the metrics registry as indented JSON.
func (t *Telemetry) WriteMetricsJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.reg.Snapshot().WriteJSON(w)
}

// WriteMetricsText renders the metrics registry in the Prometheus text
// exposition format.
func (t *Telemetry) WriteMetricsText(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.reg.Snapshot().WritePrometheus(w)
}

// WriteTraceJSON renders the full telemetry state — the span tree over
// every pipeline stage, the per-trial convergence records grouped by
// counting call, and a metrics snapshot — as one JSON document.
func (t *Telemetry) WriteTraceJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	return obs.WriteTrace(w, t.tracer, t.conv, t.reg)
}

// WriteReport renders a compact human-readable report: the span tree
// with durations, then sorted counters and gauges.
func (t *Telemetry) WriteReport(w io.Writer) error {
	if t == nil {
		return nil
	}
	return obs.WriteReport(w, t.tracer, t.reg)
}

// Reset clears the trace and convergence records (the monotonic metric
// counters are kept), so long-lived collectors can bound their memory
// between evaluations. An OnTrial subscription survives Reset —
// including one registered while an evaluation is in flight on another
// goroutine — so a live convergence feed never has to re-register; the
// call numbering also continues, keeping later TrialUpdate.Call values
// distinct from earlier ones.
func (t *Telemetry) Reset() {
	if t == nil {
		return
	}
	t.tracer.Reset()
	t.conv.Reset()
}

// DebugHandler returns an http.Handler exposing the collector live:
// /metrics (Prometheus), /snapshot.json, /trace.json, /debug/vars
// (expvar) and /debug/pprof/* (CPU profiles carry the engines' pprof
// labels pqe_engine / pqe_stage).
func (t *Telemetry) DebugHandler() http.Handler {
	if t == nil {
		return http.NotFoundHandler()
	}
	return obs.Handler(t.tracer, t.reg, t.conv)
}

// ServeDebug starts DebugHandler on addr (":0" picks a free port) in a
// background goroutine and returns the bound address. The server lives
// until the process exits.
func (t *Telemetry) ServeDebug(addr string) (string, error) {
	return obs.Serve(addr, t.DebugHandler())
}
