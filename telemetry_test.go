package pqe

import (
	"io"
	"math/big"
	"strings"
	"sync"
	"testing"
)

func starDB(t *testing.T) *Database {
	t.Helper()
	d := NewDatabase()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddFact("S1", big.NewRat(1, 2), "a", "b"))
	must(d.AddFact("S1", big.NewRat(1, 2), "a", "c"))
	must(d.AddFact("S2", big.NewRat(1, 2), "a", "d"))
	must(d.AddFact("S3", big.NewRat(2, 3), "a", "e"))
	return d
}

// Telemetry must be an observer: seeded runs return bit-identical
// results with a collector attached or not, on both counting pipelines.
func TestTelemetryDeterminism(t *testing.T) {
	cases := []struct {
		name string
		q    *Query
		db   *Database
	}{
		{"tree", StarQuery("S", 3), starDB(t)},                                  // UREstimate -> countnfta
		{"string", MustParseQuery("R1(x,y), R2(y,z), R3(z,w)"), smallPathDB(t)}, // PathEstimate -> countnfa
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bare, err := UniformReliability(tc.q, tc.db, &Options{Epsilon: 0.4, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			tel := NewTelemetry()
			traced, err := UniformReliability(tc.q, tc.db, &Options{Epsilon: 0.4, Seed: 7, Telemetry: tel})
			if err != nil {
				t.Fatal(err)
			}
			if bare.Cmp(traced) != 0 {
				t.Fatalf("telemetry perturbed the estimate: %v (bare) vs %v (traced)", bare, traced)
			}
		})
	}
}

// A trace must cover every pipeline stage of both engines and carry the
// per-trial convergence records, and the metric counters must be
// populated.
func TestTelemetryTraceContents(t *testing.T) {
	tel := NewTelemetry()
	opts := &Options{Epsilon: 0.4, Seed: 3, Telemetry: tel}
	if _, err := UniformReliability(StarQuery("S", 3), starDB(t), opts); err != nil {
		t.Fatal(err)
	}
	if _, err := UniformReliability(MustParseQuery("R1(x,y), R2(y,z), R3(z,w)"), smallPathDB(t), opts); err != nil {
		t.Fatal(err)
	}
	// UR counts subinstances and never weights; a forced-FPRAS
	// probability estimate exercises the multiplier-weighting stage.
	if _, err := Estimate(StarQuery("S", 3), starDB(t), opts); err != nil {
		t.Fatal(err)
	}

	var trace strings.Builder
	if err := tel.WriteTraceJSON(&trace); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{
		"pqe.ur_estimate", "pqe.pqe_estimate", "pqe.decompose", "pqe.build_ur",
		"reduction.translate", "pqe.trim_ur", "pqe.weight_ur", "count.trees",
		"pqe.path_estimate", "pqe.build_path_nfa", "pqe.trim_path", "count.nfa",
		"trial", "convergence", "countnfta", "countnfa",
	} {
		if !strings.Contains(trace.String(), `"`+stage+`"`) {
			t.Errorf("trace JSON missing %q", stage)
		}
	}

	var metrics strings.Builder
	if err := tel.WriteMetricsText(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"pqe_build_decompositions_total", "pqe_build_ur_reductions_total",
		"pqe_build_path_automata_total", "pqe_build_weightings_total",
		"countnfta_trials_total", "countnfta_memo_misses_total",
		"countnfa_trials_total", "countnfa_union_samples_total",
	} {
		if !strings.Contains(metrics.String(), name+" ") {
			t.Errorf("metrics text missing %s", name)
		}
	}

	var report strings.Builder
	if err := tel.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "pqe.ur_estimate") ||
		!strings.Contains(report.String(), "countnfta_trials_total") {
		t.Fatalf("report missing content:\n%s", report.String())
	}

	// Reset clears the trace and convergence but keeps the counters.
	tel.Reset()
	var after strings.Builder
	if err := tel.WriteTraceJSON(&after); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(after.String(), "pqe.ur_estimate") {
		t.Error("Reset left spans behind")
	}
	if !strings.Contains(after.String(), "countnfta_trials_total") {
		t.Error("Reset dropped the metric counters")
	}
}

func TestTelemetryOnTrial(t *testing.T) {
	tel := NewTelemetry()
	var mu sync.Mutex
	var updates []TrialUpdate
	tel.OnTrial(func(u TrialUpdate) {
		mu.Lock()
		updates = append(updates, u)
		mu.Unlock()
	})
	opts := &Options{Epsilon: 0.4, Seed: 5, Parallel: true, Telemetry: tel}
	if _, err := UniformReliability(StarQuery("S", 3), starDB(t), opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(updates) == 0 {
		t.Fatal("OnTrial never fired")
	}
	for _, u := range updates {
		if u.Engine != "countnfta" || u.Trials <= 0 || u.Trial < 0 || u.Trial >= u.Trials || u.Call <= 0 {
			t.Fatalf("malformed trial update: %+v", u)
		}
	}
}

// Reset between evaluations must not disturb an OnTrial subscription:
// the callback keeps firing afterwards (with fresh call numbers), so a
// live convergence feed never has to re-register. Reset is also called
// concurrently with a running evaluation — the subscription must keep
// firing through it.
func TestTelemetryResetKeepsOnTrial(t *testing.T) {
	tel := NewTelemetry()
	var mu sync.Mutex
	var updates []TrialUpdate
	tel.OnTrial(func(u TrialUpdate) {
		mu.Lock()
		updates = append(updates, u)
		mu.Unlock()
	})
	opts := &Options{Epsilon: 0.4, Seed: 5, Telemetry: tel}
	if _, err := UniformReliability(StarQuery("S", 3), starDB(t), opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	before := len(updates)
	var maxCall int64
	for _, u := range updates {
		if u.Call > maxCall {
			maxCall = u.Call
		}
	}
	mu.Unlock()
	if before == 0 {
		t.Fatal("OnTrial never fired before Reset")
	}

	tel.Reset()

	// A concurrent Reset mid-evaluation must not drop the subscription
	// either (the -race lane checks the synchronization).
	done := make(chan struct{})
	go func() {
		defer close(done)
		tel.Reset()
	}()
	if _, err := UniformReliability(StarQuery("S", 3), starDB(t), opts); err != nil {
		t.Fatal(err)
	}
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(updates) <= before {
		t.Fatal("OnTrial stopped firing after Reset")
	}
	for _, u := range updates[before:] {
		if u.Call <= maxCall {
			t.Fatalf("call numbering restarted after Reset: call %d ≤ earlier max %d", u.Call, maxCall)
		}
	}
}

// A nil collector must be accepted everywhere.
func TestNilTelemetry(t *testing.T) {
	var tel *Telemetry
	tel.CaptureAllocs(true)
	tel.OnTrial(func(TrialUpdate) {})
	tel.Reset()
	if err := tel.WriteMetricsJSON(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := tel.WriteMetricsText(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := tel.WriteTraceJSON(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := tel.WriteReport(io.Discard); err != nil {
		t.Fatal(err)
	}
	if tel.DebugHandler() == nil {
		t.Fatal("nil telemetry DebugHandler returned nil")
	}
	if _, err := UniformReliability(StarQuery("S", 3), starDB(t), &Options{Epsilon: 0.4, Seed: 2, Telemetry: tel}); err != nil {
		t.Fatal(err)
	}
}

// A shared session keeps working (and BuildStats keeps counting) when a
// collector is attached per call.
func TestTelemetrySession(t *testing.T) {
	q := MustParseQuery("R1(x,y), R2(y,z), R3(z,w)")
	d := smallPathDB(t)
	tel := NewTelemetry()
	est := NewEstimator(q, d, &Options{Epsilon: 0.4, Seed: 9})
	if _, err := est.UniformReliability(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := est.UniformReliability(&Options{Epsilon: 0.4, Seed: 9, Telemetry: tel}); err != nil {
		t.Fatal(err)
	}
	st := est.BuildStats()
	if st.PathAutomata != 1 || st.Weightings != 0 {
		t.Fatalf("BuildStats = %+v, want one path automaton, no weighting", st)
	}
	var trace strings.Builder
	if err := tel.WriteTraceJSON(&trace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), `"count.nfa"`) {
		t.Fatal("per-call telemetry missed the counting stage")
	}
}
