// Conditional world sampling: beyond computing Pr(Q), the counting
// machinery supports *generation* — drawing possible worlds conditioned
// on the query being true, approximately according to Pr_H(· | Q).
// This is the uniform-generation facet of the approximate counter the
// paper builds on, and the basis of "explain this query" workflows:
// which facts tend to be present when the query holds?
package main

import (
	"fmt"
	"log"
	"math/big"
	"sort"

	"pqe"
)

func main() {
	// An intrusion-detection-style chain: a flagged host connects to a
	// relay which exfiltrates to a sink. Every event is uncertain.
	q := pqe.MustParseQuery("Flagged(h), Connect(h,r), Exfil(r,s)")

	db := pqe.NewDatabase()
	add := func(rel string, num, den int64, args ...string) {
		if err := db.AddFact(rel, big.NewRat(num, den), args...); err != nil {
			log.Fatal(err)
		}
	}
	add("Flagged", 3, 4, "h1")
	add("Flagged", 1, 4, "h2")
	add("Connect", 9, 10, "h1", "r1")
	add("Connect", 1, 2, "h2", "r1")
	add("Connect", 1, 3, "h2", "r2")
	add("Exfil", 2, 3, "r1", "sink")
	add("Exfil", 1, 5, "r2", "sink")

	res, err := pqe.Probability(q, db, &pqe.Options{Epsilon: 0.05, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\nPr(attack chain exists) ≈ %.5f\n\n", q, res.Probability)

	// Draw worlds conditioned on the chain existing and tabulate how
	// often each event participates — the posterior inclusion
	// probability of each fact given the alert fired.
	const draws = 400
	counts := make(map[string]int)
	for i := 0; i < draws; i++ {
		w, err := pqe.SampleWorld(q, db, &pqe.Options{Epsilon: 0.2, Seed: int64(i + 1)})
		if err != nil {
			log.Fatal(err)
		}
		if w == nil {
			log.Fatal("query has probability 0")
		}
		for _, f := range w.Facts() {
			counts[f]++
		}
	}
	type fc struct {
		fact string
		freq float64
	}
	var rows []fc
	for f, c := range counts {
		rows = append(rows, fc{f, float64(c) / draws})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].freq > rows[j].freq })
	fmt.Println("posterior inclusion frequency given the chain exists:")
	for _, r := range rows {
		fmt.Printf("  %-22s %.3f\n", r.fact, r.freq)
	}
	fmt.Println("\n(compare with the priors: conditioning pulls the chain facts up)")
}
