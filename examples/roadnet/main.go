// Probabilistic road network: edges (road segments) are open with some
// probability — snow closures, maintenance — and the question is the
// probability that a staged route of a fixed number of legs exists.
// Leg l uses the "leg-l" segment relation, so the route question is a
// self-join-free path query; its exact evaluation is #P-hard, and its
// lineage grows as (segments per leg)^legs. This example shows the
// growth concretely and answers the query with the FPRAS while the
// brute-force oracle is still feasible for cross-checking.
package main

import (
	"fmt"
	"log"
	"math/big"

	"pqe"
)

func main() {
	const legs = 4
	// Stops per stage; every consecutive pair of stages is fully
	// connected, so witnesses = stops^(legs+1) while |D| = stops²·legs.
	const stops = 2

	db := pqe.NewDatabase()
	node := func(stage, i int) string { return fmt.Sprintf("c%d_%d", stage, i) }
	probs := []*big.Rat{
		big.NewRat(9, 10), big.NewRat(3, 4), big.NewRat(1, 2), big.NewRat(4, 5),
	}
	pi := 0
	for l := 0; l < legs; l++ {
		rel := fmt.Sprintf("Leg%d", l+1)
		for a := 0; a < stops; a++ {
			for b := 0; b < stops; b++ {
				if err := db.AddFact(rel, probs[pi%len(probs)], node(l, a), node(l+1, b)); err != nil {
					log.Fatal(err)
				}
				pi++
			}
		}
	}

	q := pqe.MustParseQuery("Leg1(x1,x2), Leg2(x2,x3), Leg3(x3,x4), Leg4(x4,x5)")
	fmt.Printf("road network: %d segments, route of %d legs\nquery: %s\n\n", db.Size(), legs, q)

	// The lineage (route enumeration) grows exponentially with legs.
	lin, err := pqe.Lineage(q, db, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("possible routes (lineage clauses): %d — stops^(legs+1) = %d\n",
		lin.Clauses, pow(stops, legs+1))

	res, err := pqe.Probability(q, db, &pqe.Options{Epsilon: 0.05, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr(an open route exists) ≈ %.6f (%s)\n", res.Probability, res.Method)

	exact, err := pqe.BruteForceProbability(q, db)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := exact.Float64()
	fmt.Printf("exact (brute force over 2^%d subinstances): %.6f\n", db.Size(), f)
	fmt.Printf("relative error: %+.4f\n\n", res.Probability/f-1)

	// The uniform-reliability view: in how many of the 2^|D| closure
	// patterns is some route open?
	urQ := q
	count, err := pqe.UniformReliability(urQ, db, &pqe.Options{Epsilon: 0.05, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closure patterns with an open route ≈ %s of 2^%d\n",
		count.Text('g', 8), db.Size())
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
