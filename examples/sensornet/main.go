// Sensor network: the paper's second motivating scenario is data
// collected from noisy sensors. This example contrasts the two sides
// of the landscape on one dataset:
//
//   - a *safe* (hierarchical) query — "some station reports both high
//     temperature and high humidity" — answered exactly in PTIME by a
//     Dalvi–Suciu safe plan;
//   - an *unsafe* chain query — "a station with a high reading is
//     upstream of a station with a failure alert" — which is
//     non-hierarchical (#P-hard exactly) and goes through the FPRAS.
package main

import (
	"fmt"
	"log"
	"math/big"

	"pqe"
)

func main() {
	db := pqe.NewDatabase()
	add := func(rel string, num, den int64, args ...string) {
		if err := db.AddFact(rel, big.NewRat(num, den), args...); err != nil {
			log.Fatal(err)
		}
	}

	// Sensor readings with detection confidences.
	add("HighTemp", 4, 5, "s1")
	add("HighTemp", 3, 5, "s2")
	add("HighTemp", 1, 5, "s4")
	add("HighHumidity", 7, 10, "s1")
	add("HighHumidity", 2, 5, "s3")
	add("HighHumidity", 1, 2, "s4")
	// Static network topology with link reliability.
	add("Upstream", 9, 10, "s1", "s2")
	add("Upstream", 9, 10, "s2", "s3")
	add("Upstream", 4, 5, "s4", "s3")
	// Failure alerts.
	add("Alert", 1, 4, "s2")
	add("Alert", 2, 3, "s3")

	fmt.Printf("sensor database: %d facts\n\n", db.Size())

	// Safe query: both conditions at the same station x.
	safeQ := pqe.MustParseQuery("HighTemp(x), HighHumidity(x)")
	_, _, isSafe, _ := pqe.Classify(safeQ)
	fmt.Printf("Q1 (safe=%v): %s\n", isSafe, safeQ)
	exact, err := pqe.ExactProbability(safeQ, db)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := exact.Float64()
	fmt.Printf("  Pr = %s = %.6f (exact safe plan)\n", exact.RatString(), f)
	bf, _ := pqe.BruteForceProbability(safeQ, db)
	fmt.Printf("  brute-force check: %s (must match exactly)\n\n", bf.RatString())

	// Unsafe chain: HighTemp(x), Upstream(x,y), Alert(y) — the classic
	// H₀-shaped non-hierarchical query.
	hardQ := pqe.MustParseQuery("HighTemp(x), Upstream(x,y), Alert(y)")
	_, _, isSafe, _ = pqe.Classify(hardQ)
	fmt.Printf("Q2 (safe=%v): %s\n", isSafe, hardQ)
	if _, err := pqe.ExactProbability(hardQ, db); err != nil {
		fmt.Printf("  safe plan: refused (%v)\n", err)
	}
	res, err := pqe.Probability(hardQ, db, &pqe.Options{Epsilon: 0.05, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Pr ≈ %.6f via %s\n", res.Probability, res.Method)
	bf2, _ := pqe.BruteForceProbability(hardQ, db)
	f2, _ := bf2.Float64()
	fmt.Printf("  brute-force check: %.6f (relative error %+.4f)\n", f2, res.Probability/f2-1)
}
