// Movie knowledge base: an analytics-shaped workload. Facts come from
// two noisy ingestion pipelines (a credits scraper and a review
// scraper). The example shows three capabilities on one dataset:
//
//  1. a snowflake query (the low-hypertree-width shape the paper's
//     motivation cites from real benchmarks) answered by the FPRAS;
//  2. a union of queries over disjoint vocabularies — "either pipeline
//     yields a usable signal" — via the independence rule;
//  3. posterior inclusion — which extraction most deserves manual
//     review, given that the query fired.
package main

import (
	"fmt"
	"log"
	"math/big"

	"pqe"
)

func main() {
	db := pqe.NewDatabase()
	add := func(rel string, num, den int64, args ...string) {
		if err := db.AddFact(rel, big.NewRat(num, den), args...); err != nil {
			log.Fatal(err)
		}
	}

	// Credits pipeline: ActedIn(actor, movie), DirectedBy(movie, director).
	add("ActedIn", 9, 10, "stone", "lalaland")
	add("ActedIn", 4, 5, "gosling", "lalaland")
	add("ActedIn", 3, 5, "stone", "cruella")
	add("DirectedBy", 9, 10, "lalaland", "chazelle")
	add("DirectedBy", 1, 2, "cruella", "gillespie")
	add("WonAward", 4, 5, "chazelle")
	add("WonAward", 1, 4, "gillespie")
	// Review pipeline: Praised(review, movie), Trusted(review).
	add("Praised", 2, 3, "r1", "lalaland")
	add("Praised", 1, 2, "r2", "cruella")
	add("Trusted", 3, 4, "r1")
	add("Trusted", 1, 3, "r2")

	// 1. Snowflake chain: "some actor appears in a movie by an
	// award-winning director" — non-hierarchical (the classic unsafe
	// chain shape), so the FPRAS does the work.
	snow := pqe.MustParseQuery("ActedIn(a,m), DirectedBy(m,d), WonAward(d)")
	res, err := pqe.Probability(snow, db, &pqe.Options{Epsilon: 0.05, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := pqe.BruteForceProbability(snow, db)
	ef, _ := exact.Float64()
	fmt.Printf("Q1 %s\n   Pr ≈ %.5f (exact %.5f, %s)\n\n", snow, res.Probability, ef, res.Method)

	// 2. Union over disjoint vocabularies: credits signal OR a trusted
	// praising review.
	review := pqe.MustParseQuery("Praised(r,m2), Trusted(r)")
	union, err := pqe.ProbabilityUnion([]*pqe.Query{snow, review}, db, &pqe.Options{Epsilon: 0.05, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1 ∨ Q2 (independent vocabularies)\n   Pr ≈ %.5f\n\n", union)

	// 3. Posterior inclusion: given the snowflake fired, which credits
	// extraction is most likely to have participated?
	fmt.Println("posterior inclusion given Q1 holds:")
	for _, f := range []struct {
		rel  string
		args []string
	}{
		{"ActedIn", []string{"stone", "lalaland"}},
		{"ActedIn", []string{"gosling", "lalaland"}},
		{"ActedIn", []string{"stone", "cruella"}},
		{"DirectedBy", []string{"lalaland", "chazelle"}},
		{"DirectedBy", []string{"cruella", "gillespie"}},
		{"WonAward", []string{"chazelle"}},
	} {
		post, err := pqe.PosteriorInclusion(snow, db, &pqe.Options{Epsilon: 0.05, Seed: 3}, f.rel, f.args...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-32s %.3f\n", fmt.Sprintf("%s(%v)", f.rel, f.args), post)
	}
}
