// Quickstart: evaluate the probability of a conjunctive query over a
// small tuple-independent probabilistic database, with the library
// choosing between an exact safe plan and the combined-complexity
// FPRAS.
package main

import (
	"fmt"
	"log"
	"math/big"

	"pqe"
)

func main() {
	// A three-step path query: #P-hard in data complexity to evaluate
	// exactly (it is non-hierarchical), yet approximable in combined
	// polynomial time by the PODS 2023 FPRAS this library implements.
	q := pqe.MustParseQuery("Follows(x,y), Reposts(y,z), Cites(z,w)")

	db := pqe.NewDatabase()
	add := func(rel string, num, den int64, args ...string) {
		if err := db.AddFact(rel, big.NewRat(num, den), args...); err != nil {
			log.Fatal(err)
		}
	}
	add("Follows", 9, 10, "ana", "bob")
	add("Follows", 1, 2, "ana", "cyd")
	add("Reposts", 3, 4, "bob", "dee")
	add("Reposts", 1, 3, "cyd", "dee")
	add("Cites", 4, 5, "dee", "eve")
	add("Cites", 1, 4, "dee", "fay")

	sjf, bounded, safe, width := pqe.Classify(q)
	fmt.Printf("query:         %s\n", q)
	fmt.Printf("classification: self-join-free=%v width=%d (bounded=%v) safe=%v\n",
		sjf, width, bounded, safe)

	res, err := pqe.Probability(q, db, &pqe.Options{Epsilon: 0.05, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr(Q) ≈ %.6f   via %s\n", res.Probability, res.Method)

	// Cross-check against brute force (only feasible because |D| = 6).
	exact, err := pqe.BruteForceProbability(q, db)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := exact.Float64()
	fmt.Printf("Pr(Q) = %.6f   exactly (= %s), brute force over 2^%d subinstances\n",
		f, exact.RatString(), db.Size())
	fmt.Printf("relative error: %+.4f (FPRAS target ±0.05)\n", res.Probability/f-1)
}
