// NLP knowledge base: the paper's opening motivation is querying
// knowledge extracted from text by an imperfect NLP system, where each
// extracted fact carries the extractor's confidence. This example
// builds a small biomedical-style KB and asks a chain question —
// "is there a drug that targets a protein that regulates a gene linked
// to some disease?" — which is a length-3 path query: non-hierarchical,
// hence #P-hard to evaluate exactly in data complexity, and with a
// lineage that grows as |D|³; the FPRAS answers it with guarantees.
package main

import (
	"fmt"
	"log"
	"math/big"

	"pqe"
)

type extraction struct {
	rel       string
	subj, obj string
	num, den  int64 // extractor confidence
}

func main() {
	// Confidences as the extractor reported them (rationals).
	kb := []extraction{
		{"Targets", "aspirin", "COX1", 19, 20},
		{"Targets", "aspirin", "COX2", 9, 10},
		{"Targets", "imatinib", "ABL1", 24, 25},
		{"Targets", "novexol", "KRAS", 2, 5}, // dubious extraction
		{"Regulates", "COX1", "PTGS1", 4, 5},
		{"Regulates", "COX2", "PTGS2", 7, 10},
		{"Regulates", "ABL1", "BCR", 9, 10},
		{"Regulates", "KRAS", "MYC", 3, 5},
		{"LinkedTo", "PTGS1", "inflammation", 3, 4},
		{"LinkedTo", "PTGS2", "inflammation", 4, 5},
		{"LinkedTo", "BCR", "leukemia", 14, 15},
		{"LinkedTo", "MYC", "lymphoma", 1, 2},
	}

	db := pqe.NewDatabase()
	for _, e := range kb {
		if err := db.AddFact(e.rel, big.NewRat(e.num, e.den), e.subj, e.obj); err != nil {
			log.Fatal(err)
		}
	}

	q := pqe.MustParseQuery("Targets(d,p), Regulates(p,g), LinkedTo(g,x)")
	fmt.Printf("KB: %d extracted facts\nquery: %s\n\n", db.Size(), q)

	// How bad would the intensional (lineage) route be? Here it is tiny,
	// but the clause count is the quantity that scales as |D|^|Q|.
	lin, err := pqe.Lineage(q, db, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineage: %d clauses, %d literals (grows as |D|^%d — the intensional bottleneck)\n",
		lin.Clauses, lin.Literals, q.Len())

	res, err := pqe.Probability(q, db, &pqe.Options{Epsilon: 0.05, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr(some drug→protein→gene→disease chain exists) ≈ %.5f (%s)\n",
		res.Probability, res.Method)

	exact, err := pqe.BruteForceProbability(q, db)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := exact.Float64()
	fmt.Printf("exact (brute force, 2^%d subinstances): %.5f\n", db.Size(), f)

	// Drill-down: restrict to the leukemia pathway by dropping the
	// other LinkedTo facts — per-disease probabilities via projection.
	for _, disease := range []string{"inflammation", "leukemia", "lymphoma"} {
		sub := pqe.NewDatabase()
		for _, e := range kb {
			if e.rel == "LinkedTo" && e.obj != disease {
				continue
			}
			if err := sub.AddFact(e.rel, big.NewRat(e.num, e.den), e.subj, e.obj); err != nil {
				log.Fatal(err)
			}
		}
		r, err := pqe.Probability(q, sub, &pqe.Options{Epsilon: 0.05, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Pr(chain ending in %-12s) ≈ %.5f\n", disease, r.Probability)
	}
}
