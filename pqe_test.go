package pqe

import (
	"errors"
	"math"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func smallPathDB(t *testing.T) *Database {
	t.Helper()
	d := NewDatabase()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddFact("R1", big.NewRat(1, 2), "a", "b"))
	must(d.AddFact("R1", big.NewRat(1, 2), "a", "c"))
	must(d.AddFact("R2", big.NewRat(1, 2), "b", "d"))
	must(d.AddFact("R2", big.NewRat(2, 3), "c", "d"))
	must(d.AddFact("R3", big.NewRat(3, 4), "d", "e"))
	return d
}

func TestQueryAccessors(t *testing.T) {
	q := MustParseQuery("R(x,y), S(y,z)")
	if q.Len() != 2 || !q.SelfJoinFree() {
		t.Error("accessors wrong")
	}
	if !PathQuery("R", 3).IsPath() {
		t.Error("PathQuery not a path")
	}
	if !StarQuery("S", 3).Safe() {
		t.Error("StarQuery not safe")
	}
	if PathQuery("R", 3).Safe() {
		t.Error("3-path reported safe")
	}
	w, err := q.HypertreeWidth()
	if err != nil || w != 1 {
		t.Errorf("width = %d, %v", w, err)
	}
}

func TestParseQueryError(t *testing.T) {
	if _, err := ParseQuery("R(x"); err == nil {
		t.Error("bad query parsed")
	}
}

func TestAddFactValidation(t *testing.T) {
	d := NewDatabase()
	if err := d.AddFact("R", big.NewRat(3, 2), "a"); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := d.AddFact("R", nil, "a"); err != nil {
		t.Error(err)
	}
	if d.Size() != 1 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestParseDatabase(t *testing.T) {
	d, err := ParseDatabase(strings.NewReader("R(a,b) : 1/2\nS(b) : 0.25\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d", d.Size())
	}
	if !strings.Contains(d.String(), "S(b) : 1/4") {
		t.Errorf("String = %q", d.String())
	}
}

func TestProbabilityAgainstBruteForce(t *testing.T) {
	q := PathQuery("R", 3)
	d := smallPathDB(t)
	want, err := BruteForceProbability(q, d)
	if err != nil {
		t.Fatal(err)
	}
	wantF, _ := want.Float64()
	res, err := Probability(q, d, &Options{Epsilon: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("3-path should not have an exact safe plan")
	}
	if res.Width != 1 || !res.SelfJoinFree || res.Safe {
		t.Errorf("classification wrong: %+v", res)
	}
	if wantF == 0 {
		t.Fatal("degenerate test instance")
	}
	if r := res.Probability / wantF; r < 0.75 || r > 1.25 {
		t.Errorf("estimate %v vs exact %v", res.Probability, wantF)
	}
}

func TestProbabilitySafeIsExact(t *testing.T) {
	q := StarQuery("R", 2)
	d := NewDatabase()
	_ = d.AddFact("R1", big.NewRat(1, 2), "h", "a")
	_ = d.AddFact("R2", big.NewRat(1, 3), "h", "b")
	res, err := Probability(q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Error("safe query not answered exactly")
	}
	if math.Abs(res.Probability-1.0/6.0) > 1e-12 {
		t.Errorf("probability = %v, want 1/6", res.Probability)
	}
}

func TestEstimateForcesFPRAS(t *testing.T) {
	q := StarQuery("R", 2)
	d := NewDatabase()
	_ = d.AddFact("R1", big.NewRat(1, 2), "h", "a")
	_ = d.AddFact("R2", big.NewRat(1, 2), "h", "b")
	got, err := Estimate(q, d, &Options{Epsilon: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.15 || got > 0.35 { // exact 1/4
		t.Errorf("estimate = %v, want ≈ 0.25", got)
	}
}

func TestUniformReliability(t *testing.T) {
	q := PathQuery("R", 2)
	d := NewDatabase()
	_ = d.AddFact("R1", nil, "a", "b")
	_ = d.AddFact("R2", nil, "b", "c")
	_ = d.AddFact("R2", nil, "b", "d")
	got, err := UniformReliability(q, d, &Options{Epsilon: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Satisfying subinstances: must contain R1(a,b) and ≥1 R2 fact → 3.
	f, _ := got.Float64()
	if f < 2.4 || f > 3.6 {
		t.Errorf("UR estimate = %v, want ≈ 3", got)
	}
}

func TestExactProbabilityUnsafe(t *testing.T) {
	q := PathQuery("R", 3)
	d := smallPathDB(t)
	if _, err := ExactProbability(q, d); !errors.Is(err, ErrUnsafe) {
		t.Errorf("err = %v, want ErrUnsafe", err)
	}
}

func TestProbabilityUnsupported(t *testing.T) {
	q := MustParseQuery("R(x,y), R(y,z)")
	d := NewDatabase()
	_ = d.AddFact("R", big.NewRat(1, 2), "a", "b")
	if _, err := Probability(q, d, nil); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestLineageInfo(t *testing.T) {
	q := PathQuery("R", 2)
	d := NewDatabase()
	_ = d.AddFact("R1", nil, "a", "b")
	_ = d.AddFact("R2", nil, "b", "c")
	info, err := Lineage(q, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Clauses != 1 || info.Literals != 2 {
		t.Errorf("Lineage = %+v", info)
	}
	if _, err := Lineage(q, d, 1); err != nil {
		t.Errorf("limit 1 with 1 clause should pass: %v", err)
	}
}

func TestClassifyAPI(t *testing.T) {
	sjf, bounded, safe, width := Classify(PathQuery("R", 4))
	if !sjf || !bounded || safe || width != 1 {
		t.Errorf("Classify = %v %v %v %d", sjf, bounded, safe, width)
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	d := NewDatabase()
	for i := 0; i < 31; i++ {
		_ = d.AddFact("R1", nil, "a", string(rune('a'+i)))
	}
	if _, err := BruteForceProbability(PathQuery("R", 1), d); err == nil {
		t.Error("oversized brute force accepted")
	}
}

func TestSampleWorldPublicAPI(t *testing.T) {
	q := PathQuery("R", 2)
	d := NewDatabase()
	_ = d.AddFact("R1", big.NewRat(1, 2), "a", "b")
	_ = d.AddFact("R2", big.NewRat(1, 2), "b", "c")
	for i := 0; i < 10; i++ {
		w, err := SampleWorld(q, d, &Options{Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if w == nil {
			t.Fatal("nil world from satisfiable query")
		}
		// The only witness chain must be fully present.
		facts := w.Facts()
		if len(facts) != 2 || facts[0] != "R1(a,b)" || facts[1] != "R2(b,c)" {
			t.Errorf("world facts = %v", facts)
		}
	}
	sub, err := SampleSatisfyingSubinstance(q, d, &Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub == nil || len(sub.Facts()) != 2 {
		t.Errorf("subinstance = %+v", sub)
	}
}

func TestExplainAndPosteriorPublicAPI(t *testing.T) {
	q := PathQuery("R", 2)
	d := NewDatabase()
	_ = d.AddFact("R1", big.NewRat(1, 2), "a", "b")
	_ = d.AddFact("R2", big.NewRat(1, 2), "b", "c")
	plan, err := Explain(q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "route:") {
		t.Errorf("plan = %q", plan)
	}
	post, err := PosteriorInclusion(q, d, &Options{Epsilon: 0.1, Seed: 2}, "R1", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	// The single R1 fact is forced whenever Q holds.
	if post < 0.9 || post > 1.0 {
		t.Errorf("posterior = %v, want ≈ 1", post)
	}
}

func TestProbabilityUnionPublicAPI(t *testing.T) {
	q1 := MustParseQuery("A(x)")
	q2 := MustParseQuery("B(x)")
	d := NewDatabase()
	_ = d.AddFact("A", big.NewRat(1, 2), "u")
	_ = d.AddFact("B", big.NewRat(1, 3), "v")
	got, err := ProbabilityUnion([]*Query{q1, q2}, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 0.5*(2.0/3.0) // = 2/3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("union = %v, want %v", got, want)
	}
	if _, err := ProbabilityUnion([]*Query{q1, q1}, d, nil); !errors.Is(err, ErrUnsupported) {
		t.Errorf("shared relations accepted: %v", err)
	}
}

func TestPublicAPICoverageGaps(t *testing.T) {
	// Query.String and error paths across the facade.
	q := MustParseQuery("R(x,y), S(y,z)")
	if q.String() != "R(x,y), S(y,z)" {
		t.Errorf("String = %q", q.String())
	}
	if _, err := ParseDatabase(strings.NewReader("R(a : bad")); err == nil {
		t.Error("bad database parsed")
	}
	if _, err := LoadDatabase("/nonexistent/path.pdb"); err == nil {
		t.Error("missing file loaded")
	}
	// LoadDatabase happy path through a temp file.
	path := filepath.Join(t.TempDir(), "db.pdb")
	if err := os.WriteFile(path, []byte("R(a,b) : 1/2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1 {
		t.Errorf("Size = %d", d.Size())
	}
	// Lineage error path (limit exceeded).
	big1 := NewDatabase()
	for i := 0; i < 4; i++ {
		_ = big1.AddFact("R1", nil, "a", string(rune('a'+i)))
		_ = big1.AddFact("R2", nil, string(rune('a'+i)), "z")
	}
	if _, err := Lineage(PathQuery("R", 2), big1, 1); err == nil {
		t.Error("lineage limit not enforced")
	}
	// Explain error path: self-join.
	sj := MustParseQuery("R(x,y), R(y,z)")
	if _, err := Explain(sj, d, nil); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Explain err = %v", err)
	}
	// SampleWorld nil when Pr(Q)=0; SampleSatisfyingSubinstance nil when
	// unsatisfiable.
	empty := NewDatabase()
	_ = empty.AddFact("R1", big.NewRat(0, 1), "a", "b")
	_ = empty.AddFact("R2", nil, "b", "c")
	w, err := SampleWorld(PathQuery("R", 2), empty, nil)
	if err != nil || w != nil {
		t.Errorf("SampleWorld = %v, %v", w, err)
	}
	unsat := NewDatabase()
	_ = unsat.AddFact("R1", nil, "a", "b") // R2 empty
	s, err := SampleSatisfyingSubinstance(PathQuery("R", 2), unsat, nil)
	if err != nil || s != nil {
		t.Errorf("SampleSatisfyingSubinstance = %v, %v", s, err)
	}
	// HypertreeWidth error path: invalid (empty) query cannot be built
	// via ParseQuery, so exercise via a query with undecomposable width
	// cap — not reachable; instead exercise MustParseQuery panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustParseQuery did not panic")
			}
		}()
		MustParseQuery("R(")
	}()
	// UniformReliability through the tree pipeline (non-path query) and
	// through the string pipeline with a non-binary foreign fact.
	star := StarQuery("S", 2)
	sdb := NewDatabase()
	_ = sdb.AddFact("S1", nil, "h", "a")
	_ = sdb.AddFact("S2", nil, "h", "b")
	ur, err := UniformReliability(star, sdb, &Options{Epsilon: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := ur.Float64(); f < 0.8 || f > 1.2 { // UR = 1
		t.Errorf("star UR = %v, want ≈ 1", ur)
	}
	mixed := NewDatabase()
	_ = mixed.AddFact("R1", nil, "a", "b")
	_ = mixed.AddFact("R2", nil, "b", "c")
	_ = mixed.AddFact("R1", nil, "u") // non-binary fact of a query relation
	ur2, err := UniformReliability(PathQuery("R", 2), mixed, &Options{Epsilon: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := ur2.Float64(); f < 1.5 || f > 2.5 { // chain forced, unary fact free: 2
		t.Errorf("mixed UR = %v, want ≈ 2", ur2)
	}
}
