module pqe

go 1.22
